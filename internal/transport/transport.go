// Package transport moves encoded protocol frames between participants.
//
// The ring protocol uses two logical channels per participant, exactly as
// the paper's implementations do (§III-E): data messages (and membership
// join messages) arrive on the data channel, tokens (and membership commit
// tokens) on the token channel. Keeping them separate lets the driver
// implement the token/data priority scheme and makes token loss rare — a
// participant needs to buffer only one token at a time.
//
// Two implementations are provided: an in-process Hub for tests, examples,
// and single-process deployments, and a UDP transport for real networks
// (IP unicast fan-out standing in for IP-multicast, which the paper notes
// Spread also supports as a fallback).
package transport

import (
	"errors"

	"accelring/internal/evs"
)

// Transport is the frame mover for one participant. Implementations must
// be safe for one sender goroutine and deliver received frames into the
// channels returned by Data and Token.
//
// Buffer ownership, in both directions:
//
//   - Sends borrow: a frame passed to Multicast or Unicast is only valid
//     for the duration of the call. The transport transmits or copies it
//     before returning and never retains it, so callers may reuse one
//     encode scratch buffer for every send.
//   - Receives hand off: a frame read from Data or Token belongs to the
//     consumer. The provided implementations rent receive buffers from
//     internal/bufpool; the consumer should bufpool.Put each frame it
//     does not retain (recycling is optional — see the bufpool ownership
//     rules — but keeps the steady state allocation-free).
type Transport interface {
	// Multicast sends a frame to every other participant's data channel.
	Multicast(frame []byte) error
	// Unicast sends a frame to one participant's token channel.
	Unicast(to evs.ProcID, frame []byte) error
	// Data returns the channel of received data-class frames.
	Data() <-chan []byte
	// Token returns the channel of received token-class frames.
	Token() <-chan []byte
	// Close releases resources and stops delivery. Whether the receive
	// channels are closed is implementation-defined; drivers must also
	// have their own stop signal.
	Close() error
}

// Flusher is implemented by transports that stage sends for syscall
// batching. Multicast on such a transport may buffer the frame; Flush
// forces everything staged onto the wire. The provided batching transport
// flushes implicitly when the batch fills and before every Unicast (so
// data frames precede the token), but the protocol driver should still
// Flush at the end of each burst to bound latency.
type Flusher interface {
	Flush() error
}

// Flush flushes t if it batches sends and is a no-op otherwise, so
// drivers can call it unconditionally at burst boundaries.
func Flush(t Transport) {
	if f, ok := t.(Flusher); ok {
		_ = f.Flush()
	}
}

// MaxBatch caps BatchConfig sizes (the kernel clamps one
// sendmmsg/recvmmsg vector at UIO_MAXIOV = 1024 messages anyway).
const MaxBatch = 1024

// BatchConfig sizes syscall batching on a wire transport. The zero value
// disables batching (one syscall per datagram, the pre-batching
// behavior).
type BatchConfig struct {
	// Send is the maximum number of data frames staged before a flush.
	// Values above 1 enable send batching: a token round's burst of data
	// frames is coalesced into one sendmmsg call (one write per datagram
	// on platforms without sendmmsg). 0 or 1 disables.
	Send int
	// Recv is the maximum number of datagrams drained per receive
	// syscall via recvmmsg. 0 or 1 disables (one blocking read per
	// datagram).
	Recv int
}

// ErrClosed is returned by sends on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Drops reports receiver-side drops for transports that count them
// (channel/socket overflow).
type Drops struct {
	Data, Token uint64
}
