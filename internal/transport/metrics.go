package transport

import (
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/obs"
)

// netMetrics holds per-transport frame/byte counters, split by frame
// class. Handles are resolved once at construction; a nil *netMetrics
// (observability off) makes every method a no-op.
type netMetrics struct {
	txDataFrames, txDataBytes   *obs.Counter
	txTokenFrames, txTokenBytes *obs.Counter
	rxDataFrames, rxDataBytes   *obs.Counter
	rxTokenFrames, rxTokenBytes *obs.Counter
	rxDropped                   *obs.Counter
	txSyscalls, rxSyscalls      *obs.Counter
	batchWait                   *obs.Histogram
}

// newNetMetrics resolves the counter handles under prefix (e.g.
// "transport.udp."). It returns nil when reg is nil. Any registry that
// observes a transport also gets the frame pool's hit/miss gauges
// published (under "bufpool"), since the transports are the pool's main
// tenants.
func newNetMetrics(reg *obs.Registry, prefix string) *netMetrics {
	if reg == nil {
		return nil
	}
	bufpool.PublishTo(reg)
	return &netMetrics{
		txDataFrames:  reg.Counter(prefix + "tx_data_frames"),
		txDataBytes:   reg.Counter(prefix + "tx_data_bytes"),
		txTokenFrames: reg.Counter(prefix + "tx_token_frames"),
		txTokenBytes:  reg.Counter(prefix + "tx_token_bytes"),
		rxDataFrames:  reg.Counter(prefix + "rx_data_frames"),
		rxDataBytes:   reg.Counter(prefix + "rx_data_bytes"),
		rxTokenFrames: reg.Counter(prefix + "rx_token_frames"),
		rxTokenBytes:  reg.Counter(prefix + "rx_token_bytes"),
		rxDropped:     reg.Counter(prefix + "rx_dropped"),
		txSyscalls:    reg.Counter(prefix + "tx_syscalls"),
		rxSyscalls:    reg.Counter(prefix + "rx_syscalls"),
		batchWait:     reg.Histogram(prefix+"batch_wait_ns", obs.FineDurationBuckets()),
	}
}

// tx counts one frame sent toward one destination.
func (m *netMetrics) tx(token bool, n int) {
	if m == nil {
		return
	}
	if token {
		m.txTokenFrames.Inc()
		m.txTokenBytes.Add(uint64(n))
		return
	}
	m.txDataFrames.Inc()
	m.txDataBytes.Add(uint64(n))
}

// rx counts one frame accepted into a receive channel.
func (m *netMetrics) rx(token bool, n int) {
	if m == nil {
		return
	}
	if token {
		m.rxTokenFrames.Inc()
		m.rxTokenBytes.Add(uint64(n))
		return
	}
	m.rxDataFrames.Inc()
	m.rxDataBytes.Add(uint64(n))
}

// txSys counts kernel crossings on the send path. With batching one
// crossing covers many frames; the ratio to tx_data_frames is the win.
func (m *netMetrics) txSys(n int) {
	if m == nil || n == 0 {
		return
	}
	m.txSyscalls.Add(uint64(n))
}

// rxSys counts kernel crossings on the receive path.
func (m *netMetrics) rxSys(n int) {
	if m == nil || n == 0 {
		return
	}
	m.rxSyscalls.Add(uint64(n))
}

// batchHeld records how long a send batch sat staged before its flush —
// the adaptive-packing hold the batching trades for fewer syscalls.
func (m *netMetrics) batchHeld(d time.Duration) {
	if m == nil {
		return
	}
	m.batchWait.ObserveDuration(d)
}

// rxDrop counts one frame lost to receive-channel overflow.
func (m *netMetrics) rxDrop() {
	if m == nil {
		return
	}
	m.rxDropped.Inc()
}
