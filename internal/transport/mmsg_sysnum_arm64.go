//go:build linux && arm64

package transport

// Generic (asm-generic) syscall numbers used by linux/arm64; stable ABI.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
