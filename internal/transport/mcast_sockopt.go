//go:build linux || darwin

package transport

import (
	"net"
	"syscall"
)

// setMulticastSendOpts configures the multicast send socket: TTL (scope),
// loopback (same-host deployments and tests need copies delivered to other
// local sockets), and the outgoing interface. Errors are returned so the
// caller can fail setup loudly — a wrong TTL or interface silently
// blackholes the data path.
func setMulticastSendOpts(conn *net.UDPConn, ttl int, loopback bool, ifi *net.Interface) error {
	rc, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	cerr := rc.Control(func(fd uintptr) {
		if serr = syscall.SetsockoptByte(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_TTL, byte(ttl)); serr != nil {
			return
		}
		loop := byte(0)
		if loopback {
			loop = 1
		}
		if serr = syscall.SetsockoptByte(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_LOOP, loop); serr != nil {
			return
		}
		if ifi != nil {
			ip := interfaceIPv4(ifi)
			if ip == nil {
				return
			}
			var addr [4]byte
			copy(addr[:], ip)
			serr = syscall.SetsockoptInet4Addr(int(fd), syscall.IPPROTO_IP, syscall.IP_MULTICAST_IF, addr)
		}
	})
	if cerr != nil {
		return cerr
	}
	return serr
}

// interfaceIPv4 returns the interface's first IPv4 address, or nil.
func interfaceIPv4(ifi *net.Interface) net.IP {
	addrs, err := ifi.Addrs()
	if err != nil {
		return nil
	}
	for _, a := range addrs {
		var ip net.IP
		switch v := a.(type) {
		case *net.IPNet:
			ip = v.IP
		case *net.IPAddr:
			ip = v.IP
		}
		if ip4 := ip.To4(); ip4 != nil {
			return ip4
		}
	}
	return nil
}
