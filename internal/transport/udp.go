package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/obs"
	"accelring/internal/wire"
)

// UDPPeer holds a participant's two receive addresses.
type UDPPeer struct {
	// Data is the host:port receiving data-class frames.
	Data string
	// Token is the host:port receiving token-class frames.
	Token string
}

// UDPConfig configures a UDP transport.
type UDPConfig struct {
	// Self is the local participant.
	Self evs.ProcID
	// Listen holds the local listen addresses.
	Listen UDPPeer
	// Peers maps every other participant to its addresses. Self may be
	// present and is ignored.
	Peers map[evs.ProcID]UDPPeer
	// DataChanCap and TokenChanCap size the receive channels in frames
	// (defaults 8192 and 16).
	DataChanCap, TokenChanCap int
	// Obs, when non-nil, receives transport.udp.* frame/byte counters.
	Obs *obs.Registry
}

// UDP is the real-network transport: one socket per frame class, exactly
// as the paper's implementations separate token and data traffic. IP
// multicast is emulated by unicast fan-out, the fallback the paper notes
// Spread provides where multicast is unavailable.
type UDP struct {
	self     evs.ProcID
	dataConn *net.UDPConn
	tokConn  *net.UDPConn

	mu    sync.RWMutex
	peers map[evs.ProcID]*udpPeerAddrs
	inj   *faults.Injector

	dataCh  chan []byte
	tokenCh chan []byte

	closed    atomic.Bool
	dataDrop  atomic.Uint64
	tokenDrop atomic.Uint64
	wg        sync.WaitGroup
	nm        *netMetrics
}

type udpPeerAddrs struct {
	data, token *net.UDPAddr
}

var _ Transport = (*UDP)(nil)

// NewUDP opens the sockets and starts the reader goroutines.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.Self == 0 {
		return nil, fmt.Errorf("transport: udp requires Self")
	}
	if cfg.DataChanCap <= 0 {
		cfg.DataChanCap = 8192
	}
	if cfg.TokenChanCap <= 0 {
		cfg.TokenChanCap = 16
	}
	dataConn, err := listenUDP(cfg.Listen.Data)
	if err != nil {
		return nil, fmt.Errorf("transport: data socket: %w", err)
	}
	tokConn, err := listenUDP(cfg.Listen.Token)
	if err != nil {
		dataConn.Close()
		return nil, fmt.Errorf("transport: token socket: %w", err)
	}
	// Large receive buffers, as production Spread configures. Errors are
	// non-fatal: the OS may clamp.
	_ = dataConn.SetReadBuffer(4 << 20)
	_ = tokConn.SetReadBuffer(256 << 10)

	u := &UDP{
		self:     cfg.Self,
		dataConn: dataConn,
		tokConn:  tokConn,
		peers:    make(map[evs.ProcID]*udpPeerAddrs, len(cfg.Peers)),
		dataCh:   make(chan []byte, cfg.DataChanCap),
		tokenCh:  make(chan []byte, cfg.TokenChanCap),
		nm:       newNetMetrics(cfg.Obs, "transport.udp."),
	}
	// Register ourselves: the membership representative starts a new ring
	// by unicasting the initial token to itself.
	if err := u.AddPeer(cfg.Self, u.LocalAddrs()); err != nil {
		u.Close()
		return nil, err
	}
	for id, p := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		if err := u.AddPeer(id, p); err != nil {
			u.Close()
			return nil, err
		}
	}
	u.wg.Add(2)
	go u.readLoop(dataConn, u.dataCh, &u.dataDrop, false)
	go u.readLoop(tokConn, u.tokenCh, &u.tokenDrop, true)
	return u, nil
}

func listenUDP(addr string) (*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.ListenUDP("udp", ua)
}

// AddPeer registers (or updates) a peer's addresses. Membership changes
// may add peers at runtime.
func (u *UDP) AddPeer(id evs.ProcID, p UDPPeer) error {
	da, err := net.ResolveUDPAddr("udp", p.Data)
	if err != nil {
		return fmt.Errorf("transport: peer %d data addr: %w", id, err)
	}
	ta, err := net.ResolveUDPAddr("udp", p.Token)
	if err != nil {
		return fmt.Errorf("transport: peer %d token addr: %w", id, err)
	}
	u.mu.Lock()
	u.peers[id] = &udpPeerAddrs{data: da, token: ta}
	u.mu.Unlock()
	return nil
}

// SetInjector installs a fault injector on the send path (nil clears):
// every outgoing frame is decided per destination, so loss, delay
// (reordering), duplication, and partitions behave per-receiver exactly as
// on the other transports. Emulating faults at the sender keeps the
// receive path a plain socket read.
func (u *UDP) SetInjector(in *faults.Injector) {
	u.mu.Lock()
	u.inj = in
	u.mu.Unlock()
}

// sendFaulty writes every surviving copy of frame per the injector
// decision; delayed copies are written from timer goroutines (writes on a
// closed socket then fail silently, like loss).
func (u *UDP) sendFaulty(conn *net.UDPConn, frame []byte, addr *net.UDPAddr, d faults.Decision) {
	if d.Drop {
		return
	}
	write := func() {
		if !u.closed.Load() {
			_, _ = conn.WriteToUDP(frame, addr)
		}
	}
	writeAfter := func(delay time.Duration) {
		if delay > 0 {
			time.AfterFunc(delay, write)
			return
		}
		write()
	}
	writeAfter(d.Delay)
	for _, extra := range d.Extra {
		writeAfter(extra)
	}
}

// LocalAddrs returns the bound listen addresses (useful with :0 ports).
func (u *UDP) LocalAddrs() UDPPeer {
	return UDPPeer{
		Data:  u.dataConn.LocalAddr().String(),
		Token: u.tokConn.LocalAddr().String(),
	}
}

func (u *UDP) readLoop(conn *net.UDPConn, ch chan []byte, drops *atomic.Uint64, token bool) {
	defer u.wg.Done()
	buf := make([]byte, wire.MaxPayload+1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			// Socket closed (or fatal error): stop delivering.
			close(ch)
			return
		}
		frame := append([]byte(nil), buf[:n]...)
		select {
		case ch <- frame:
			u.nm.rx(token, n)
		default:
			drops.Add(1)
			u.nm.rxDrop()
		}
	}
}

// Multicast implements Transport by unicast fan-out to every peer's data
// address. Send errors to individual peers are ignored, as UDP loss would
// be; the protocol's retransmission machinery recovers.
func (u *UDP) Multicast(frame []byte) error {
	if u.closed.Load() {
		return ErrClosed
	}
	u.mu.RLock()
	defer u.mu.RUnlock()
	for id, p := range u.peers {
		if id == u.self {
			// No loopback: the protocol self-receives its own messages
			// at send time.
			continue
		}
		u.nm.tx(false, len(frame))
		if u.inj != nil {
			d := u.inj.DecideWall(faults.Packet{
				From: u.self, To: id, Size: len(frame), Frame: frame,
			})
			u.sendFaulty(u.dataConn, frame, p.data, d)
			continue
		}
		_, _ = u.dataConn.WriteToUDP(frame, p.data)
	}
	return nil
}

// Unicast implements Transport: send to the peer's token address.
func (u *UDP) Unicast(to evs.ProcID, frame []byte) error {
	if u.closed.Load() {
		return ErrClosed
	}
	u.mu.RLock()
	p := u.peers[to]
	inj := u.inj
	u.mu.RUnlock()
	if p == nil {
		// Unknown peer: drop, like the network would for a dead host.
		return nil
	}
	u.nm.tx(true, len(frame))
	if inj != nil {
		d := inj.DecideWall(faults.Packet{
			From: u.self, To: to, Token: true, Size: len(frame), Frame: frame,
		})
		u.sendFaulty(u.tokConn, frame, p.token, d)
		return nil
	}
	_, _ = u.tokConn.WriteToUDP(frame, p.token)
	return nil
}

// Data implements Transport.
func (u *UDP) Data() <-chan []byte { return u.dataCh }

// Token implements Transport.
func (u *UDP) Token() <-chan []byte { return u.tokenCh }

// Drops returns receiver-side channel overflow counts.
func (u *UDP) Drops() Drops {
	return Drops{Data: u.dataDrop.Load(), Token: u.tokenDrop.Load()}
}

// Close shuts both sockets down and waits for the readers to exit. The
// receive channels are closed.
func (u *UDP) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	err1 := u.dataConn.Close()
	err2 := u.tokConn.Close()
	u.wg.Wait()
	if err1 != nil {
		return err1
	}
	return err2
}
