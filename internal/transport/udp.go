package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/obs"
	"accelring/internal/wire"
)

// UDPPeer holds a participant's two receive addresses.
type UDPPeer struct {
	// Data is the host:port receiving data-class frames.
	Data string
	// Token is the host:port receiving token-class frames.
	Token string
}

// UDPConfig configures a UDP transport.
type UDPConfig struct {
	// Self is the local participant.
	Self evs.ProcID
	// Listen holds the local listen addresses.
	Listen UDPPeer
	// Peers maps every other participant to its addresses. Self may be
	// present and is ignored.
	Peers map[evs.ProcID]UDPPeer
	// DataChanCap and TokenChanCap size the receive channels in frames
	// (defaults 8192 and 16).
	DataChanCap, TokenChanCap int
	// Obs, when non-nil, receives transport.udp.* frame/byte counters.
	Obs *obs.Registry
	// Flight, when non-nil, receives a black-box event per inbound frame
	// dropped on a full receive channel.
	Flight *obs.FlightRecorder
}

// UDP is the real-network transport: one socket per frame class, exactly
// as the paper's implementations separate token and data traffic. IP
// multicast is emulated by unicast fan-out, the fallback the paper notes
// Spread provides where multicast is unavailable.
type UDP struct {
	self     evs.ProcID
	dataConn *net.UDPConn
	tokConn  *net.UDPConn

	// peers is an atomically swapped copy-on-write snapshot: senders load
	// it and fan out without holding any lock across socket writes, so a
	// concurrent AddPeer (membership change) never stalls the hot path.
	// peerMu serializes the writers only.
	peerMu sync.Mutex
	peers  atomic.Pointer[map[evs.ProcID]*udpPeerAddrs]
	inj    atomic.Pointer[faults.Injector]

	dataCh  chan []byte
	tokenCh chan []byte

	closed    atomic.Bool
	dataDrop  atomic.Uint64
	tokenDrop atomic.Uint64
	wg        sync.WaitGroup
	nm        *netMetrics
	fl        *obs.FlightRecorder
	delayQ    delayQueue
}

type udpPeerAddrs struct {
	data, token *net.UDPAddr
}

var _ Transport = (*UDP)(nil)

// NewUDP opens the sockets and starts the reader goroutines.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.Self == 0 {
		return nil, fmt.Errorf("transport: udp requires Self")
	}
	if cfg.DataChanCap <= 0 {
		cfg.DataChanCap = 8192
	}
	if cfg.TokenChanCap <= 0 {
		cfg.TokenChanCap = 16
	}
	dataConn, err := listenUDP(cfg.Listen.Data)
	if err != nil {
		return nil, fmt.Errorf("transport: data socket: %w", err)
	}
	tokConn, err := listenUDP(cfg.Listen.Token)
	if err != nil {
		dataConn.Close()
		return nil, fmt.Errorf("transport: token socket: %w", err)
	}
	// Large receive buffers, as production Spread configures. Errors are
	// non-fatal: the OS may clamp.
	_ = dataConn.SetReadBuffer(4 << 20)
	_ = tokConn.SetReadBuffer(256 << 10)

	u := &UDP{
		self:     cfg.Self,
		dataConn: dataConn,
		tokConn:  tokConn,
		dataCh:   make(chan []byte, cfg.DataChanCap),
		tokenCh:  make(chan []byte, cfg.TokenChanCap),
		nm:       newNetMetrics(cfg.Obs, "transport.udp."),
		fl:       cfg.Flight,
	}
	empty := make(map[evs.ProcID]*udpPeerAddrs)
	u.peers.Store(&empty)
	// Register ourselves: the membership representative starts a new ring
	// by unicasting the initial token to itself.
	if err := u.AddPeer(cfg.Self, u.LocalAddrs()); err != nil {
		u.Close()
		return nil, err
	}
	for id, p := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		if err := u.AddPeer(id, p); err != nil {
			u.Close()
			return nil, err
		}
	}
	u.wg.Add(2)
	go u.readLoop(dataConn, u.dataCh, &u.dataDrop, false)
	go u.readLoop(tokConn, u.tokenCh, &u.tokenDrop, true)
	return u, nil
}

func listenUDP(addr string) (*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.ListenUDP("udp", ua)
}

// AddPeer registers (or updates) a peer's addresses. Membership changes
// may add peers at runtime: the peer table is replaced copy-on-write, so
// in-flight sends keep fanning out over their snapshot.
func (u *UDP) AddPeer(id evs.ProcID, p UDPPeer) error {
	da, err := net.ResolveUDPAddr("udp", p.Data)
	if err != nil {
		return fmt.Errorf("transport: peer %d data addr: %w", id, err)
	}
	ta, err := net.ResolveUDPAddr("udp", p.Token)
	if err != nil {
		return fmt.Errorf("transport: peer %d token addr: %w", id, err)
	}
	u.peerMu.Lock()
	old := *u.peers.Load()
	next := make(map[evs.ProcID]*udpPeerAddrs, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = &udpPeerAddrs{data: da, token: ta}
	u.peers.Store(&next)
	u.peerMu.Unlock()
	return nil
}

// SetInjector installs a fault injector on the send path (nil clears):
// every outgoing frame is decided per destination, so loss, delay
// (reordering), duplication, and partitions behave per-receiver exactly as
// on the other transports. Emulating faults at the sender keeps the
// receive path a plain socket read.
func (u *UDP) SetInjector(in *faults.Injector) {
	u.inj.Store(in)
}

// sendFaulty writes every surviving copy of frame per the injector
// decision. Delayed copies are copied into rented buffers (the caller may
// reuse the frame as encode scratch the moment we return) and written from
// the transport's single delay-queue drainer; writes after Close fail
// silently, like loss.
func (u *UDP) sendFaulty(conn *net.UDPConn, frame []byte, addr *net.UDPAddr, d faults.Decision) {
	if d.Drop {
		return
	}
	sched := func(delay time.Duration) {
		if delay <= 0 {
			if !u.closed.Load() {
				_, _ = conn.WriteToUDP(frame, addr)
			}
			return
		}
		cp := bufpool.Get(len(frame))
		copy(cp, frame)
		u.delayQ.after(delay, func() {
			if !u.closed.Load() {
				_, _ = conn.WriteToUDP(cp, addr)
			}
			bufpool.Put(cp)
		})
	}
	sched(d.Delay)
	for _, extra := range d.Extra {
		sched(extra)
	}
}

// LocalAddrs returns the bound listen addresses (useful with :0 ports).
func (u *UDP) LocalAddrs() UDPPeer {
	return UDPPeer{
		Data:  u.dataConn.LocalAddr().String(),
		Token: u.tokConn.LocalAddr().String(),
	}
}

// readLoop reads datagrams into a fixed socket buffer and hands each frame
// to the receive channel in a buffer rented from bufpool; the consumer
// (the protocol driver) owns it from there. When the channel is already
// full the datagram is dropped before renting or copying anything — the
// old code paid a full frame allocation and copy just to throw it away.
func (u *UDP) readLoop(conn *net.UDPConn, ch chan []byte, drops *atomic.Uint64, token bool) {
	defer u.wg.Done()
	buf := make([]byte, wire.MaxPayload+1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			// Socket closed (or fatal error): stop delivering.
			close(ch)
			return
		}
		if len(ch) == cap(ch) {
			drops.Add(1)
			u.nm.rxDrop()
			u.recordDrop(token)
			continue
		}
		frame := bufpool.Get(n)
		copy(frame, buf[:n])
		select {
		case ch <- frame:
			u.nm.rx(token, n)
		default:
			bufpool.Put(frame)
			drops.Add(1)
			u.nm.rxDrop()
			u.recordDrop(token)
		}
	}
}

// recordDrop notes a receiver-overflow drop in the flight recorder.
func (u *UDP) recordDrop(token bool) {
	if u.fl == nil {
		return
	}
	note := "data"
	if token {
		note = "token"
	}
	u.fl.Record(obs.FlightEvent{Kind: obs.FlightRxDrop, Note: note})
}

// Multicast implements Transport by unicast fan-out to every peer's data
// address. Send errors to individual peers are ignored, as UDP loss would
// be; the protocol's retransmission machinery recovers. No lock is held
// across the socket writes: the fan-out runs over an immutable peer
// snapshot, and with no injector installed the fast path is a bare
// WriteToUDP per peer.
func (u *UDP) Multicast(frame []byte) error {
	if u.closed.Load() {
		return ErrClosed
	}
	peers := *u.peers.Load()
	inj := u.inj.Load()
	for id, p := range peers {
		if id == u.self {
			// No loopback: the protocol self-receives its own messages
			// at send time.
			continue
		}
		u.nm.tx(false, len(frame))
		if inj != nil {
			d := inj.DecideWall(faults.Packet{
				From: u.self, To: id, Size: len(frame), Frame: frame,
			})
			u.sendFaulty(u.dataConn, frame, p.data, d)
			continue
		}
		_, _ = u.dataConn.WriteToUDP(frame, p.data)
	}
	return nil
}

// Unicast implements Transport: send to the peer's token address. Like
// Multicast, it runs lock-free over the peer snapshot.
func (u *UDP) Unicast(to evs.ProcID, frame []byte) error {
	if u.closed.Load() {
		return ErrClosed
	}
	p := (*u.peers.Load())[to]
	if p == nil {
		// Unknown peer: drop, like the network would for a dead host.
		return nil
	}
	u.nm.tx(true, len(frame))
	if inj := u.inj.Load(); inj != nil {
		d := inj.DecideWall(faults.Packet{
			From: u.self, To: to, Token: true, Size: len(frame), Frame: frame,
		})
		u.sendFaulty(u.tokConn, frame, p.token, d)
		return nil
	}
	_, _ = u.tokConn.WriteToUDP(frame, p.token)
	return nil
}

// Data implements Transport.
func (u *UDP) Data() <-chan []byte { return u.dataCh }

// Token implements Transport.
func (u *UDP) Token() <-chan []byte { return u.tokenCh }

// Drops returns receiver-side channel overflow counts.
func (u *UDP) Drops() Drops {
	return Drops{Data: u.dataDrop.Load(), Token: u.tokenDrop.Load()}
}

// Close shuts both sockets down and waits for the readers to exit. The
// receive channels are closed, and every pending delayed send and every
// received-but-unconsumed frame is recycled to bufpool — nothing the
// transport rented stays stranded.
func (u *UDP) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	// Flush the delay queue first: with the closed flag set, each pending
	// callback skips its socket write and recycles its buffer, and the
	// drainer goroutine exits.
	u.delayQ.stop()
	err1 := u.dataConn.Close()
	err2 := u.tokConn.Close()
	u.wg.Wait()
	// The readLoops have closed both channels; recycle frames that were
	// received but never consumed. A consumer draining concurrently is
	// fine — each frame is read exactly once, by it or by us.
	for f := range u.dataCh {
		bufpool.Put(f)
	}
	for f := range u.tokenCh {
		bufpool.Put(f)
	}
	if err1 != nil {
		return err1
	}
	return err2
}
