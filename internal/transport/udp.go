package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/obs"
	"accelring/internal/wire"
)

// UDPPeer holds a participant's two receive addresses.
type UDPPeer struct {
	// Data is the host:port receiving data-class frames.
	Data string
	// Token is the host:port receiving token-class frames.
	Token string
}

// UDPMulticast selects the true IP-multicast data path: data frames are
// sent once to the group instead of unicast per peer, as on the paper's
// testbed. Tokens stay unicast. Every ring member must be configured with
// the same group; IPv4 groups only (239.0.0.0/8 is the private-use
// range).
type UDPMulticast struct {
	// Group is the multicast group host:port data frames are sent to and
	// received from, e.g. "239.192.7.1:7600".
	Group string
	// TTL bounds propagation; 0 means the default of 1 (link-local).
	TTL int
	// Interface optionally names the NIC used for sending and joining.
	Interface string
	// DisableLoopback turns off IP_MULTICAST_LOOP. Leave it false for
	// same-host deployments and tests, where members share a machine and
	// only see each other via the loopback copy.
	DisableLoopback bool
}

// UDPConfig configures a UDP transport.
type UDPConfig struct {
	// Self is the local participant.
	Self evs.ProcID
	// Listen holds the local listen addresses.
	Listen UDPPeer
	// Peers maps every other participant to its addresses. Self may be
	// present and is ignored.
	Peers map[evs.ProcID]UDPPeer
	// DataChanCap and TokenChanCap size the receive channels in frames
	// (defaults 8192 and 16).
	DataChanCap, TokenChanCap int
	// Batch sizes sendmmsg/recvmmsg syscall coalescing on the data path.
	// The zero value keeps one syscall per datagram.
	Batch BatchConfig
	// Multicast, when non-nil, replaces unicast fan-out with IP
	// multicast for data frames.
	Multicast *UDPMulticast
	// Obs, when non-nil, receives transport.udp.* frame/byte counters.
	Obs *obs.Registry
	// Flight, when non-nil, receives a black-box event per inbound frame
	// dropped on a full receive channel.
	Flight *obs.FlightRecorder
}

// mcMagic/mcHeader frame the transport-level multicast envelope: group
// datagrams carry [magic][sender ProcID, big-endian u32] ahead of the
// protocol frame so receivers can discard their own loopback copies (the
// protocol self-delivers at send time) and foreign traffic on the group.
const (
	mcMagic  = 0xAC
	mcHeader = 5
)

// UDP is the real-network transport: one socket per frame class, exactly
// as the paper's implementations separate token and data traffic. Data
// dissemination is either unicast fan-out (the fallback the paper notes
// Spread provides where multicast is unavailable) or true IP multicast,
// and sends/receives can be batched into single sendmmsg/recvmmsg
// kernel crossings.
type UDP struct {
	self     evs.ProcID
	dataConn *net.UDPConn
	tokConn  *net.UDPConn

	// peers is an atomically swapped copy-on-write snapshot: senders load
	// it and fan out without holding any lock across socket writes, so a
	// concurrent AddPeer (membership change) never stalls the hot path.
	// peerMu serializes the writers only.
	peerMu sync.Mutex
	peers  atomic.Pointer[map[evs.ProcID]*udpPeerAddrs]
	inj    atomic.Pointer[faults.Injector]

	// Send batching: frames staged under sendMu in pooled copies, each
	// with the peer snapshot it was addressed against (nil = the
	// multicast group). writer is non-nil iff batching is on.
	sendMu    sync.Mutex
	writer    *mmsgWriter
	batchSend int
	pendBuf   [][]byte
	pendTo    []*map[evs.ProcID]*udpPeerAddrs
	// pendSince: when the oldest staged frame entered the batch (zero when
	// empty or metrics are off). Feeds the batch_wait_ns histogram so the
	// syscall-batching hold shows up in latency attribution.
	pendSince time.Time

	mc *mcState

	dataCh  chan []byte
	tokenCh chan []byte

	closed    atomic.Bool
	dataDrop  atomic.Uint64
	tokenDrop atomic.Uint64
	txSysN    atomic.Uint64
	rxSysN    atomic.Uint64
	wg        sync.WaitGroup
	nm        *netMetrics
	fl        *obs.FlightRecorder
	delayQ    delayQueue
}

type udpPeerAddrs struct {
	data, token *net.UDPAddr
	// raw is the precomputed kernel sockaddr for the data address, built
	// once at AddPeer so the batched flush never resolves anything.
	raw   rawAddr
	rawOK bool
}

// mcState holds the multicast data path: the group-joined receive socket
// and the resolved group address sends go to. In multicast mode the
// unicast data socket is send-only.
type mcState struct {
	conn  *net.UDPConn
	group *net.UDPAddr
	raw   rawAddr
	rawOK bool
}

var _ Transport = (*UDP)(nil)
var _ Flusher = (*UDP)(nil)

// NewUDP opens the sockets and starts the reader goroutines.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.Self == 0 {
		return nil, fmt.Errorf("transport: udp requires Self")
	}
	if cfg.DataChanCap <= 0 {
		cfg.DataChanCap = 8192
	}
	if cfg.TokenChanCap <= 0 {
		cfg.TokenChanCap = 16
	}
	dataConn, err := listenUDP(cfg.Listen.Data)
	if err != nil {
		return nil, fmt.Errorf("transport: data socket: %w", err)
	}
	tokConn, err := listenUDP(cfg.Listen.Token)
	if err != nil {
		dataConn.Close()
		return nil, fmt.Errorf("transport: token socket: %w", err)
	}
	// Large receive buffers, as production Spread configures. Errors are
	// non-fatal: the OS may clamp.
	_ = dataConn.SetReadBuffer(4 << 20)
	_ = tokConn.SetReadBuffer(256 << 10)

	u := &UDP{
		self:     cfg.Self,
		dataConn: dataConn,
		tokConn:  tokConn,
		dataCh:   make(chan []byte, cfg.DataChanCap),
		tokenCh:  make(chan []byte, cfg.TokenChanCap),
		nm:       newNetMetrics(cfg.Obs, "transport.udp."),
		fl:       cfg.Flight,
	}
	if cfg.Multicast != nil {
		mc, err := openMulticast(dataConn, cfg.Multicast)
		if err != nil {
			dataConn.Close()
			tokConn.Close()
			return nil, err
		}
		u.mc = mc
	}
	if cfg.Batch.Send > 1 {
		if w := newMMsgWriter(dataConn, cfg.Batch.Send); w != nil {
			u.writer = w
			u.batchSend = cfg.Batch.Send
		}
	}
	empty := make(map[evs.ProcID]*udpPeerAddrs)
	u.peers.Store(&empty)
	// Register ourselves: the membership representative starts a new ring
	// by unicasting the initial token to itself.
	if err := u.AddPeer(cfg.Self, u.LocalAddrs()); err != nil {
		u.Close()
		return nil, err
	}
	for id, p := range cfg.Peers {
		if id == cfg.Self {
			continue
		}
		if err := u.AddPeer(id, p); err != nil {
			u.Close()
			return nil, err
		}
	}
	recvBatch := cfg.Batch.Recv
	u.wg.Add(2)
	if u.mc != nil {
		// Data arrives on the group socket only; the envelope filters our
		// own loopback copies.
		go u.readLoop(u.mc.conn, recvBatch, u.dataCh, u.deliverMC)
	} else {
		go u.readLoop(dataConn, recvBatch, u.dataCh, func(raw []byte) {
			u.deliverFrame(raw, u.dataCh, &u.dataDrop, false)
		})
	}
	// Tokens arrive one per round; batching buys nothing there.
	go u.readLoop(tokConn, 0, u.tokenCh, func(raw []byte) {
		u.deliverFrame(raw, u.tokenCh, &u.tokenDrop, true)
	})
	return u, nil
}

// openMulticast joins the group for receiving and configures the unicast
// data socket (the sender) with TTL, loopback, and interface options.
func openMulticast(send *net.UDPConn, m *UDPMulticast) (*mcState, error) {
	ga, err := net.ResolveUDPAddr("udp4", m.Group)
	if err != nil {
		return nil, fmt.Errorf("transport: multicast group: %w", err)
	}
	if ga.IP == nil || !ga.IP.IsMulticast() {
		return nil, fmt.Errorf("transport: multicast group %q is not an IPv4 multicast address", m.Group)
	}
	var ifi *net.Interface
	if m.Interface != "" {
		ifi, err = net.InterfaceByName(m.Interface)
		if err != nil {
			return nil, fmt.Errorf("transport: multicast interface %q: %w", m.Interface, err)
		}
	}
	conn, err := net.ListenMulticastUDP("udp4", ifi, ga)
	if err != nil {
		return nil, fmt.Errorf("transport: join multicast group %s: %w", ga, err)
	}
	_ = conn.SetReadBuffer(4 << 20)
	ttl := m.TTL
	if ttl <= 0 {
		ttl = 1
	}
	if err := setMulticastSendOpts(send, ttl, !m.DisableLoopback, ifi); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: multicast send options: %w", err)
	}
	raw, ok := mkRawAddr(ga)
	return &mcState{conn: conn, group: ga, raw: raw, rawOK: ok}, nil
}

func listenUDP(addr string) (*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	return net.ListenUDP("udp", ua)
}

// AddPeer registers (or updates) a peer's addresses. Membership changes
// may add peers at runtime: the peer table is replaced copy-on-write, so
// in-flight sends keep fanning out over their snapshot.
func (u *UDP) AddPeer(id evs.ProcID, p UDPPeer) error {
	da, err := net.ResolveUDPAddr("udp", p.Data)
	if err != nil {
		return fmt.Errorf("transport: peer %d data addr: %w", id, err)
	}
	ta, err := net.ResolveUDPAddr("udp", p.Token)
	if err != nil {
		return fmt.Errorf("transport: peer %d token addr: %w", id, err)
	}
	pa := &udpPeerAddrs{data: da, token: ta}
	pa.raw, pa.rawOK = mkRawAddr(da)
	u.peerMu.Lock()
	old := *u.peers.Load()
	next := make(map[evs.ProcID]*udpPeerAddrs, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[id] = pa
	u.peers.Store(&next)
	u.peerMu.Unlock()
	return nil
}

// SetInjector installs a fault injector on the send path (nil clears):
// every outgoing frame is decided per destination, so loss, delay
// (reordering), duplication, and partitions behave per-receiver exactly as
// on the other transports. Emulating faults at the sender keeps the
// receive path a plain socket read.
func (u *UDP) SetInjector(in *faults.Injector) {
	u.inj.Store(in)
}

// sendFaulty writes every surviving copy of frame per the injector
// decision. Delayed copies are copied into rented buffers (the caller may
// reuse the frame as encode scratch the moment we return) and written from
// the transport's single delay-queue drainer; writes after Close fail
// silently, like loss.
func (u *UDP) sendFaulty(conn *net.UDPConn, frame []byte, addr *net.UDPAddr, d faults.Decision) {
	if d.Drop {
		return
	}
	sched := func(delay time.Duration) {
		if delay <= 0 {
			if !u.closed.Load() {
				_, _ = conn.WriteToUDP(frame, addr)
				u.countTxSys(1)
			}
			return
		}
		cp := bufpool.Get(len(frame))
		copy(cp, frame)
		u.delayQ.after(delay, func() {
			if !u.closed.Load() {
				_, _ = conn.WriteToUDP(cp, addr)
				u.countTxSys(1)
			}
			bufpool.Put(cp)
		})
	}
	sched(d.Delay)
	for _, extra := range d.Extra {
		sched(extra)
	}
}

// LocalAddrs returns the bound listen addresses (useful with :0 ports).
func (u *UDP) LocalAddrs() UDPPeer {
	return UDPPeer{
		Data:  u.dataConn.LocalAddr().String(),
		Token: u.tokConn.LocalAddr().String(),
	}
}

// Syscalls returns cumulative send/receive kernel crossings on the wire —
// the number the batch path exists to shrink. Divide by the frame
// counters for syscalls per frame.
func (u *UDP) Syscalls() (tx, rx uint64) {
	return u.txSysN.Load(), u.rxSysN.Load()
}

func (u *UDP) countTxSys(n int) {
	if n == 0 {
		return
	}
	u.txSysN.Add(uint64(n))
	u.nm.txSys(n)
}

func (u *UDP) countRxSys(n int) {
	if n == 0 {
		return
	}
	u.rxSysN.Add(uint64(n))
	u.nm.rxSys(n)
}

// readLoop drains one socket into a receive channel, one datagram per
// syscall or — when batch > 1 and the platform supports recvmmsg — a
// batch per syscall. Each datagram is handed to deliver, which rents the
// frame's pooled buffer; the fixed slot buffers here are reused across
// reads. The channel is closed when the socket dies (Close).
func (u *UDP) readLoop(conn *net.UDPConn, batch int, ch chan []byte, deliver func(raw []byte)) {
	defer u.wg.Done()
	if batch > 1 {
		if r := newMMsgReader(conn, batch, wire.MaxPayload+1024); r != nil {
			// Hoisted so the hot loop closes over one allocation, not one
			// per syscall (the zero-alloc receive gate measures this).
			visit := func(i, n int) { deliver(r.slot(i)[:n]) }
			for {
				_, sys, ok := r.readBatch(visit)
				u.countRxSys(sys)
				if !ok {
					close(ch)
					return
				}
			}
		}
	}
	buf := make([]byte, wire.MaxPayload+1024)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			// Socket closed (or fatal error): stop delivering.
			close(ch)
			return
		}
		u.countRxSys(1)
		deliver(buf[:n])
	}
}

// deliverFrame copies one received datagram into a rented buffer and
// pushes it to the channel; the consumer (the protocol driver) owns it
// from there. When the channel is already full the datagram is dropped
// before renting or copying anything.
func (u *UDP) deliverFrame(raw []byte, ch chan []byte, drops *atomic.Uint64, token bool) {
	if len(ch) == cap(ch) {
		drops.Add(1)
		u.nm.rxDrop()
		u.recordDrop(token)
		return
	}
	frame := bufpool.Get(len(raw))
	copy(frame, raw)
	select {
	case ch <- frame:
		u.nm.rx(token, len(raw))
	default:
		bufpool.Put(frame)
		drops.Add(1)
		u.nm.rxDrop()
		u.recordDrop(token)
	}
}

// deliverMC strips the multicast envelope and discards our own loopback
// copies (the protocol self-delivers at send time) and any foreign
// traffic sharing the group.
func (u *UDP) deliverMC(raw []byte) {
	if len(raw) < mcHeader || raw[0] != mcMagic {
		return
	}
	if evs.ProcID(binary.BigEndian.Uint32(raw[1:mcHeader])) == u.self {
		return
	}
	u.deliverFrame(raw[mcHeader:], u.dataCh, &u.dataDrop, false)
}

// recordDrop notes a receiver-overflow drop in the flight recorder.
func (u *UDP) recordDrop(token bool) {
	if u.fl == nil {
		return
	}
	note := "data"
	if token {
		note = "token"
	}
	u.fl.Record(obs.FlightEvent{Kind: obs.FlightRxDrop, Note: note})
}

// Multicast implements Transport. In multicast mode the frame goes to
// the group in one datagram; otherwise it is fanned out by unicast to
// every peer's data address. Send errors are ignored, as UDP loss would
// be; the protocol's retransmission machinery recovers. With batching on,
// the frame is staged in a pooled copy and hits the wire at the next
// flush (batch full, token send, or explicit Flush).
func (u *UDP) Multicast(frame []byte) error {
	if u.closed.Load() {
		return ErrClosed
	}
	if u.mc != nil {
		return u.multicastGroup(frame)
	}
	snap := u.peers.Load()
	peers := *snap
	if inj := u.inj.Load(); inj != nil {
		// Faults are decided per destination and sent immediately; flush
		// first so staged frames keep their ordering ahead of these.
		_ = u.Flush()
		for id, p := range peers {
			if id == u.self {
				// No loopback: the protocol self-receives its own
				// messages at send time.
				continue
			}
			u.nm.tx(false, len(frame))
			d := inj.DecideWall(faults.Packet{
				From: u.self, To: id, Size: len(frame), Frame: frame,
			})
			u.sendFaulty(u.dataConn, frame, p.data, d)
		}
		return nil
	}
	if u.writer != nil {
		// One pooled copy per frame, shared across the whole fan-out; the
		// peer snapshot is resolved at flush time from the pointer staged
		// with it.
		cp := bufpool.Get(len(frame))
		copy(cp, frame)
		for id := range peers {
			if id != u.self {
				u.nm.tx(false, len(frame))
			}
		}
		u.sendMu.Lock()
		u.pendBuf = append(u.pendBuf, cp)
		u.pendTo = append(u.pendTo, snap)
		if u.nm != nil && len(u.pendBuf) == 1 {
			u.pendSince = time.Now()
		}
		if len(u.pendBuf) >= u.batchSend {
			u.flushLocked()
		}
		u.sendMu.Unlock()
		return nil
	}
	for id, p := range peers {
		if id == u.self {
			continue
		}
		u.nm.tx(false, len(frame))
		_, _ = u.dataConn.WriteToUDP(frame, p.data)
		u.countTxSys(1)
	}
	return nil
}

// multicastGroup sends one enveloped datagram to the group.
func (u *UDP) multicastGroup(frame []byte) error {
	u.nm.tx(false, len(frame))
	cp := bufpool.Get(mcHeader + len(frame))
	cp[0] = mcMagic
	binary.BigEndian.PutUint32(cp[1:mcHeader], uint32(u.self))
	copy(cp[mcHeader:], frame)
	if inj := u.inj.Load(); inj != nil {
		// Real multicast cannot drop per receiver at the sender: one
		// decision covers the whole group, modeling loss on the sender's
		// uplink.
		_ = u.Flush()
		d := inj.DecideWall(faults.Packet{
			From: u.self, Size: len(cp), Frame: cp,
		})
		u.sendFaulty(u.dataConn, cp, u.mc.group, d)
		bufpool.Put(cp)
		return nil
	}
	if u.writer != nil {
		u.sendMu.Lock()
		u.pendBuf = append(u.pendBuf, cp)
		u.pendTo = append(u.pendTo, nil)
		if u.nm != nil && len(u.pendBuf) == 1 {
			u.pendSince = time.Now()
		}
		if len(u.pendBuf) >= u.batchSend {
			u.flushLocked()
		}
		u.sendMu.Unlock()
		return nil
	}
	_, _ = u.dataConn.WriteToUDP(cp, u.mc.group)
	u.countTxSys(1)
	bufpool.Put(cp)
	return nil
}

// Flush implements Flusher: everything staged by send batching hits the
// wire. Safe to call concurrently with sends; a no-op when batching is
// off or nothing is pending.
func (u *UDP) Flush() error {
	if u.writer == nil {
		return nil
	}
	u.sendMu.Lock()
	u.flushLocked()
	u.sendMu.Unlock()
	return nil
}

// flushLocked expands every staged frame into its destinations and
// transmits the whole batch in as few sendmmsg calls as possible. Caller
// holds sendMu. Pooled frame copies are recycled after the syscall
// returns — the kernel has copied them out by then.
func (u *UDP) flushLocked() {
	if len(u.pendBuf) == 0 {
		return
	}
	if u.nm != nil && !u.pendSince.IsZero() {
		u.nm.batchHeld(time.Since(u.pendSince))
		u.pendSince = time.Time{}
	}
	for i, f := range u.pendBuf {
		snap := u.pendTo[i]
		if snap == nil {
			if u.mc != nil && u.mc.rawOK {
				u.writer.append(f, &u.mc.raw)
			}
			continue
		}
		for id, p := range *snap {
			if id == u.self || !p.rawOK {
				continue
			}
			u.writer.append(f, &p.raw)
		}
	}
	u.countTxSys(u.writer.writeBatch())
	for i, f := range u.pendBuf {
		bufpool.Put(f)
		u.pendBuf[i] = nil
		u.pendTo[i] = nil
	}
	u.pendBuf = u.pendBuf[:0]
	u.pendTo = u.pendTo[:0]
}

// Unicast implements Transport: send to the peer's token address. Like
// Multicast, it runs lock-free over the peer snapshot. Staged data
// frames are flushed first so the token never overtakes the data it
// covers on the wire.
func (u *UDP) Unicast(to evs.ProcID, frame []byte) error {
	if u.closed.Load() {
		return ErrClosed
	}
	if u.writer != nil {
		_ = u.Flush()
	}
	p := (*u.peers.Load())[to]
	if p == nil {
		// Unknown peer: drop, like the network would for a dead host.
		return nil
	}
	u.nm.tx(true, len(frame))
	if inj := u.inj.Load(); inj != nil {
		d := inj.DecideWall(faults.Packet{
			From: u.self, To: to, Token: true, Size: len(frame), Frame: frame,
		})
		u.sendFaulty(u.tokConn, frame, p.token, d)
		return nil
	}
	_, _ = u.tokConn.WriteToUDP(frame, p.token)
	u.countTxSys(1)
	return nil
}

// Data implements Transport.
func (u *UDP) Data() <-chan []byte { return u.dataCh }

// Token implements Transport.
func (u *UDP) Token() <-chan []byte { return u.tokenCh }

// Drops returns receiver-side channel overflow counts.
func (u *UDP) Drops() Drops {
	return Drops{Data: u.dataDrop.Load(), Token: u.tokenDrop.Load()}
}

// Close shuts both sockets down and waits for the readers to exit. The
// receive channels are closed, and every pending delayed send, staged
// batch frame, and received-but-unconsumed frame is recycled to bufpool —
// nothing the transport rented stays stranded.
func (u *UDP) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	// Flush the delay queue first: with the closed flag set, each pending
	// callback skips its socket write and recycles its buffer, and the
	// drainer goroutine exits.
	u.delayQ.stop()
	// Staged batch frames are dropped, not sent: a closed transport loses
	// in-flight traffic exactly like the network would.
	u.sendMu.Lock()
	for i, f := range u.pendBuf {
		bufpool.Put(f)
		u.pendBuf[i] = nil
		u.pendTo[i] = nil
	}
	u.pendBuf = u.pendBuf[:0]
	u.pendTo = u.pendTo[:0]
	u.sendMu.Unlock()
	err1 := u.dataConn.Close()
	err2 := u.tokConn.Close()
	if u.mc != nil {
		_ = u.mc.conn.Close()
	}
	u.wg.Wait()
	// The readLoops have closed both channels; recycle frames that were
	// received but never consumed. A consumer draining concurrently is
	// fine — each frame is read exactly once, by it or by us.
	for f := range u.dataCh {
		bufpool.Put(f)
	}
	for f := range u.tokenCh {
		bufpool.Put(f)
	}
	if err1 != nil {
		return err1
	}
	return err2
}
