package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/faults"
)

// poolBalanced polls until every buffer rented since the before snapshot
// has been recycled (gets delta == puts delta), failing the test after a
// timeout. Callers must not run in parallel with other tests: the bufpool
// counters are global.
func poolBalanced(t *testing.T, before bufpool.Stats) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var got, want uint64
	for time.Now().Before(deadline) {
		now := bufpool.Snapshot()
		got = now.Puts - before.Puts
		want = now.Gets - before.Gets
		if got == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("pooled frames leaked: %d rented since snapshot, only %d recycled", want, got)
}

// TestHubCloseRecyclesQueuedFrames pins satellite fix: frames sitting
// unread in an endpoint's receive channels — and delayed copies parked in
// the hub's delay queue — are recycled when the endpoint and hub close,
// leaving the pool's rent/recycle accounting balanced.
func TestHubCloseRecyclesQueuedFrames(t *testing.T) {
	before := bufpool.Snapshot()

	hub := NewHub()
	a, err := hub.Endpoint(1, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Endpoint(2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Park some deliveries in the delay queue and queue others directly.
	hub.SetDelay(func(from, to evs.ProcID, token bool) time.Duration {
		if token {
			return time.Minute // will still be pending at Close
		}
		return 0
	})
	for i := 0; i < 5; i++ {
		if err := a.Multicast([]byte(fmt.Sprintf("data-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := a.Unicast(2, []byte(fmt.Sprintf("tok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overflow b's data channel too: frames 8.. are dropped-and-recycled at
	// send time, frames 0..7 stay queued until Close.
	for i := 0; i < 10; i++ {
		if err := a.Multicast([]byte("overflow")); err != nil {
			t.Fatal(err)
		}
	}

	// Nothing is ever read from b. Closing must recycle the queued frames;
	// closing the hub must flush the minute-delayed token copies (each sees
	// the closed endpoint and recycles).
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	poolBalanced(t, before)
}

// TestUDPCloseRecyclesQueuedFrames: frames the readLoop already rented and
// queued, plus delayed sends pending in the delay queue, are recycled by
// Close.
func TestUDPCloseRecyclesQueuedFrames(t *testing.T) {
	before := bufpool.Snapshot()

	u1, err := NewUDP(UDPConfig{Self: 1, Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := NewUDP(UDPConfig{Self: 2, Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := u1.AddPeer(2, u2.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	// Delay every outgoing frame so copies pile up in u1's delay queue.
	var plan faults.Plan
	plan.Add(faults.Rule{Name: "slow", Model: faults.Delay{Min: time.Minute, Max: time.Minute}})
	u1.SetInjector(faults.New(7, plan))
	for i := 0; i < 5; i++ {
		if err := u1.Multicast([]byte(fmt.Sprintf("delayed-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	u1.SetInjector(nil)

	// Undelayed frames reach u2's socket and get rented into its channels;
	// nothing ever reads them.
	for i := 0; i < 5; i++ {
		if err := u1.Multicast([]byte(fmt.Sprintf("queued-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Give u2's readLoop a moment to rent and queue the datagrams.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) && len(u2.dataCh) < 5 {
		time.Sleep(2 * time.Millisecond)
	}

	if err := u2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := u1.Close(); err != nil {
		t.Fatal(err)
	}
	poolBalanced(t, before)
}

// TestHubCloseUnderLoad tears the hub and endpoints down while senders are
// hammering delayed multicasts. Run under -race (the Makefile race target
// covers this package): it must neither race, nor double-recycle, nor
// strand the delay-queue drainer.
func TestHubCloseUnderLoad(t *testing.T) {
	hub := NewHub()
	eps := make([]*Endpoint, 4)
	for i := range eps {
		ep, err := hub.Endpoint(evs.ProcID(i+1), 16, 16)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	hub.SetDelay(func(from, to evs.ProcID, token bool) time.Duration {
		return time.Duration(from) * 100 * time.Microsecond
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep *Endpoint) {
			defer wg.Done()
			payload := []byte("under-load")
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = ep.Multicast(payload)
				_ = ep.Unicast(1, payload)
			}
		}(ep)
	}
	time.Sleep(20 * time.Millisecond)
	for _, ep := range eps {
		if err := ep.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	// A send after Close must keep failing fast, and a second Close is a
	// no-op.
	if err := eps[0].Multicast([]byte("late")); err != ErrClosed {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUDPCloseUnderLoadWithDelays closes a UDP transport while concurrent
// senders keep scheduling injector-delayed copies. Close must flush the
// delay queue exactly once per pending copy (race detector pins this) and
// never write after the sockets are gone.
func TestUDPCloseUnderLoadWithDelays(t *testing.T) {
	u1, err := NewUDP(UDPConfig{Self: 1, Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	u2, err := NewUDP(UDPConfig{Self: 2, Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer u2.Close()
	if err := u1.AddPeer(2, u2.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	var plan faults.Plan
	plan.Add(faults.Rule{Name: "jitter", Model: faults.Delay{Min: 0, Max: 2 * time.Millisecond}})
	plan.Add(faults.Rule{Name: "dup", Model: faults.Duplicate{P: 0.5}})
	u1.SetInjector(faults.New(99, plan))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte("delayed-under-close")
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = u1.Multicast(payload)
				_ = u1.Unicast(2, payload)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	if err := u1.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := u1.Close(); err != nil {
		t.Fatal(err)
	}
}
