package transport

import (
	"sync"
	"testing"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/faults"
)

// TestUDPConcurrentSendAddPeerClose hammers Multicast from several
// goroutines while AddPeer rewrites the peer table and Close finally
// tears the transport down. Under -race this pins the lock-free
// copy-on-write peer snapshot: no sender may observe a torn table, and no
// received frame may show bytes from two different sends (which would
// mean a send wrote into a buffer the receiver already owned).
func TestUDPConcurrentSendAddPeerClose(t *testing.T) {
	send, recv := newUDPPair(t)
	defer recv.Close()

	// Every frame is 64 bytes, all set to one value: any mix of values in
	// a received frame is a shared-buffer corruption.
	const frameLen = 64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			frame := make([]byte, frameLen)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := byte(g*31 + i)
				for j := range frame {
					frame[j] = v
				}
				if send.Multicast(frame) != nil {
					return // closed
				}
			}
		}(g)
	}
	// Peer churn: re-register the receiver and phantom peers, forcing
	// snapshot swaps mid-fan-out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		addrs := recv.LocalAddrs()
		for i := 0; i < 400; i++ {
			id := evs.ProcID(100 + i%3)
			if send.AddPeer(id, addrs) != nil {
				return
			}
			if i == 250 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	checked := 0
	deadline := time.After(250 * time.Millisecond)
drain:
	for {
		select {
		case f := <-recv.Data():
			if len(f) != frameLen {
				t.Fatalf("received %d-byte frame, want %d", len(f), frameLen)
			}
			v := f[0]
			for i, b := range f {
				if b != v {
					t.Fatalf("corrupt frame: byte %d is %#x, byte 0 is %#x", i, b, v)
				}
			}
			checked++
			bufpool.Put(f)
			if checked >= 2000 {
				break drain
			}
		case <-deadline:
			break drain
		}
	}
	close(stop)
	wg.Wait()
	send.Close()
	if checked == 0 {
		t.Fatal("no frames observed")
	}
}

// TestUDPDelayedSendCopiesFrame pins the delayed-send ownership rule: a
// frame handed to Multicast may be reused as encode scratch the moment the
// call returns, even when a fault injector holds a delayed copy. The old
// code captured the caller's slice in its timer; mutating the scratch then
// corrupted the in-flight frame.
func TestUDPDelayedSendCopiesFrame(t *testing.T) {
	send, recv := newUDPPair(t)
	defer recv.Close()
	defer send.Close()

	var plan faults.Plan
	plan.Add(faults.Rule{Name: "delay", To: 2, Model: faults.Delay{Min: 20 * time.Millisecond, Max: 20 * time.Millisecond}})
	send.SetInjector(faults.New(1, plan))

	scratch := make([]byte, 32)
	for i := range scratch {
		scratch[i] = 0xAA
	}
	if err := send.Multicast(scratch); err != nil {
		t.Fatal(err)
	}
	for i := range scratch {
		scratch[i] = 0xBB // reuse the scratch while the copy is in flight
	}
	select {
	case f := <-recv.Data():
		for i, b := range f {
			if b != 0xAA {
				t.Fatalf("delayed frame byte %d is %#x, want 0xAA: sender scratch leaked into flight", i, b)
			}
		}
		bufpool.Put(f)
	case <-time.After(2 * time.Second):
		t.Fatal("delayed frame never arrived")
	}
}

// TestHubDelayedDeliveryCopies is the in-memory analogue: a delayed hub
// delivery must not alias the sender's buffer, and every receiver copy is
// independently owned (recycling one must not corrupt another).
func TestHubDelayedDeliveryCopies(t *testing.T) {
	hub := NewHub()
	a, err := hub.Endpoint(1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := hub.Endpoint(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := hub.Endpoint(3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	hub.SetDelay(func(from, to evs.ProcID, token bool) time.Duration {
		return 10 * time.Millisecond
	})

	scratch := []byte("original-frame-bytes")
	want := string(scratch)
	if err := a.Multicast(scratch); err != nil {
		t.Fatal(err)
	}
	for i := range scratch {
		scratch[i] = 'X'
	}
	for _, ep := range []*Endpoint{b, c} {
		select {
		case f := <-ep.Data():
			if string(f) != want {
				t.Fatalf("endpoint %d got %q, want %q", ep.ID(), f, want)
			}
			// Recycle immediately; the other endpoint's copy must be
			// unaffected (they must not share a buffer).
			for i := range f {
				f[i] = 0
			}
			bufpool.Put(f)
		case <-time.After(2 * time.Second):
			t.Fatalf("endpoint %d never received the delayed frame", ep.ID())
		}
	}
}
