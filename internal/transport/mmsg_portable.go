//go:build !(linux && (amd64 || arm64))

// Portable single-syscall fallback for platforms without the raw
// sendmmsg/recvmmsg wiring (see mmsg_linux.go). Batch semantics — staging,
// flush points, buffer ownership — are identical; only the syscall count
// per flush differs (one write/read per datagram instead of one per
// batch).

package transport

import "net"

const mmsgAvailable = false

// rawAddr keeps the resolved address; there is no kernel blob to build.
type rawAddr struct {
	addr *net.UDPAddr
}

func mkRawAddr(a *net.UDPAddr) (rawAddr, bool) {
	if a == nil {
		return rawAddr{}, false
	}
	return rawAddr{addr: a}, true
}

// mmsgWriter stages frames like the linux implementation but flushes with
// one WriteToUDP per datagram.
type mmsgWriter struct {
	conn   *net.UDPConn
	frames [][]byte
	addrs  []*rawAddr
}

func newMMsgWriter(conn *net.UDPConn, batch int) *mmsgWriter {
	return &mmsgWriter{conn: conn}
}

func (w *mmsgWriter) append(frame []byte, addr *rawAddr) {
	w.frames = append(w.frames, frame)
	w.addrs = append(w.addrs, addr)
}

func (w *mmsgWriter) staged() int { return len(w.frames) }

func (w *mmsgWriter) writeBatch() int {
	syscalls := 0
	for i, f := range w.frames {
		if w.addrs[i].addr == nil {
			continue
		}
		_, _ = w.conn.WriteToUDP(f, w.addrs[i].addr)
		syscalls++
	}
	w.frames = w.frames[:0]
	w.addrs = w.addrs[:0]
	return syscalls
}

// mmsgReader reads one datagram per syscall into slot 0.
type mmsgReader struct {
	conn  *net.UDPConn
	slots [][]byte
}

func newMMsgReader(conn *net.UDPConn, batch, frameSize int) *mmsgReader {
	return &mmsgReader{conn: conn, slots: [][]byte{make([]byte, frameSize)}}
}

func (r *mmsgReader) readBatch(visit func(i, n int)) (got, syscalls int, ok bool) {
	n, _, err := r.conn.ReadFromUDP(r.slots[0])
	if err != nil {
		return 0, 1, false
	}
	visit(0, n)
	return 1, 1, true
}

func (r *mmsgReader) slot(i int) []byte { return r.slots[i] }
