package transport

import (
	"sync"
	"sync/atomic"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/wire"
)

// WithAuth wraps inner so every outbound frame carries a truncated
// HMAC-SHA256 tag and every inbound frame is verified before the driver
// sees it. Forged or corrupted frames (bad tag, wrong key, no tag) are
// counted on the "transport.auth_drops" counter of reg, flight-recorded
// as FlightRxDrop events with note "auth:data"/"auth:token", recycled,
// and never delivered — a forged token or data frame cannot reach the
// ordering engine.
//
// An empty key returns inner unchanged, so the authentication-off path
// keeps its zero-overhead (and zero-allocation) behavior. reg and fl may
// be nil.
//
// The wrapper preserves the Transport contract: sends still borrow (the
// tag is appended into an internal scratch owned by the single sender
// goroutine) and verified receives still hand off the pooled buffer,
// trimmed in place, so bufpool recycling by capacity is unaffected.
func WithAuth(inner Transport, key []byte, reg *obs.Registry, fl *obs.FlightRecorder) Transport {
	auth := wire.NewAuth(key)
	if auth == nil {
		return inner
	}
	a := &authTransport{
		inner:   inner,
		auth:    auth,
		dataCh:  make(chan []byte, 4096),
		tokenCh: make(chan []byte, 16),
		stop:    make(chan struct{}),
		dropCnt: reg.Counter("transport.auth_drops"),
		fl:      fl,
	}
	a.wg.Add(2)
	go a.forward(inner.Data(), a.dataCh, "auth:data")
	go a.forward(inner.Token(), a.tokenCh, "auth:token")
	return a
}

type authTransport struct {
	inner   Transport
	auth    *wire.Auth
	scratch []byte // sender-side signing buffer (one sender goroutine)

	dataCh  chan []byte
	tokenCh chan []byte
	stop    chan struct{}
	wg      sync.WaitGroup
	closed  atomic.Bool

	drops   atomic.Uint64
	dropCnt *obs.Counter
	fl      *obs.FlightRecorder
}

var _ Transport = (*authTransport)(nil)
var _ Flusher = (*authTransport)(nil)

// Flush implements Flusher by forwarding to the inner transport, so
// batching still flushes at burst boundaries when authentication is on.
func (a *authTransport) Flush() error {
	if f, ok := a.inner.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// Multicast implements Transport, signing the frame first.
func (a *authTransport) Multicast(frame []byte) error {
	a.scratch = a.auth.AppendMAC(a.scratch[:0], frame)
	return a.inner.Multicast(a.scratch)
}

// Unicast implements Transport, signing the frame first.
func (a *authTransport) Unicast(to evs.ProcID, frame []byte) error {
	a.scratch = a.auth.AppendMAC(a.scratch[:0], frame)
	return a.inner.Unicast(to, a.scratch)
}

// Data implements Transport: only frames that verified.
func (a *authTransport) Data() <-chan []byte { return a.dataCh }

// Token implements Transport: only frames that verified.
func (a *authTransport) Token() <-chan []byte { return a.tokenCh }

// AuthDrops returns how many inbound frames failed verification.
func (a *authTransport) AuthDrops() uint64 { return a.drops.Load() }

// Close stops the verifier goroutines and closes the inner transport.
// Like the inner implementations, the outbound channels are not closed;
// drivers stop via their own signal.
func (a *authTransport) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	close(a.stop)
	err := a.inner.Close()
	a.wg.Wait()
	return err
}

// forward verifies frames from in and hands the trimmed bodies to out.
// It exits on Close (the inner channels may never close — the Hub's
// don't) or when the inner channel closes (UDP does on socket close).
func (a *authTransport) forward(in <-chan []byte, out chan []byte, note string) {
	defer a.wg.Done()
	for {
		select {
		case <-a.stop:
			return
		case f, ok := <-in:
			if !ok {
				return
			}
			body, good := a.auth.Verify(f)
			if !good {
				bufpool.Put(f)
				a.drops.Add(1)
				a.dropCnt.Inc()
				a.fl.Record(obs.FlightEvent{Kind: obs.FlightRxDrop, Note: note})
				continue
			}
			select {
			case out <- body:
			case <-a.stop:
				bufpool.Put(body)
				return
			}
		}
	}
}
