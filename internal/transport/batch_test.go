package transport

import (
	"bytes"
	"testing"
	"time"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
)

// newBatchedUDPPair is newUDPPair with syscall batching enabled on both
// ends.
func newBatchedUDPPair(t *testing.T, send, recv int) (*UDP, *UDP) {
	t.Helper()
	mk := func(self evs.ProcID) *UDP {
		u, err := NewUDP(UDPConfig{
			Self:   self,
			Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
			Batch:  BatchConfig{Send: send, Recv: recv},
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { u.Close() })
		return u
	}
	a, b := mk(1), mk(2)
	if err := a.AddPeer(2, b.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	if err := b.AddPeer(1, a.LocalAddrs()); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// collectFrames drains n data frames, returning them keyed by their
// first byte (the tests tag frames with an index so UDP reordering
// cannot confuse the comparison).
func collectFrames(t *testing.T, ch <-chan []byte, n int) map[byte][]byte {
	t.Helper()
	got := make(map[byte][]byte, n)
	deadline := time.After(5 * time.Second)
	for len(got) < n {
		select {
		case f := <-ch:
			if len(f) == 0 {
				t.Fatal("empty frame")
			}
			got[f[0]] = append([]byte(nil), f...)
		case <-deadline:
			t.Fatalf("received %d/%d distinct frames", len(got), n)
		}
	}
	return got
}

func TestUDPBatchedRoundTrip(t *testing.T) {
	a, b := newBatchedUDPPair(t, 8, 8)
	const n = 5
	frames := make([][]byte, n)
	for i := range frames {
		frames[i] = append([]byte{byte(i)}, bytes.Repeat([]byte{0xC4}, 100+i)...)
	}
	txBefore, _ := a.Syscalls()
	for _, f := range frames {
		if err := a.Multicast(f); err != nil {
			t.Fatal(err)
		}
	}
	// Nothing on the wire yet (staged below the batch threshold), so the
	// explicit flush must release the whole burst.
	if err := a.Flush(); err != nil {
		t.Fatal(err)
	}
	got := collectFrames(t, b.Data(), n)
	for i, want := range frames {
		if !bytes.Equal(got[byte(i)], want) {
			t.Fatalf("frame %d corrupted: got %d bytes, want %d", i, len(got[byte(i)]), len(want))
		}
	}
	if mmsgAvailable {
		txAfter, _ := a.Syscalls()
		if sys := txAfter - txBefore; sys != 1 {
			t.Fatalf("flushing a %d-frame burst took %d send syscalls, want 1", n, sys)
		}
	}
}

func TestUDPBatchAutoFlushOnFull(t *testing.T) {
	a, b := newBatchedUDPPair(t, 4, 0)
	// Exactly batchSend frames: the last Multicast must flush without any
	// explicit Flush call.
	for i := 0; i < 4; i++ {
		if err := a.Multicast([]byte{byte(i), 0xEE}); err != nil {
			t.Fatal(err)
		}
	}
	collectFrames(t, b.Data(), 4)
}

func TestUDPBatchFlushesBeforeUnicast(t *testing.T) {
	a, b := newBatchedUDPPair(t, 64, 0)
	// Stage data well below the batch threshold, then send a token: the
	// token send must push the staged data out first.
	for i := 0; i < 3; i++ {
		if err := a.Multicast([]byte{byte(i), 0xDD}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Unicast(2, []byte("token")); err != nil {
		t.Fatal(err)
	}
	collectFrames(t, b.Data(), 3)
	if got := recvFrame(t, b.Token()); string(got) != "token" {
		t.Fatalf("token corrupted: %q", got)
	}
}

func TestUDPBatchedSyscallReduction(t *testing.T) {
	if !mmsgAvailable {
		t.Skip("sendmmsg/recvmmsg not available on this platform")
	}
	a, b := newBatchedUDPPair(t, 16, 16)
	const bursts, burst = 20, 16
	payload := bytes.Repeat([]byte{0xAA}, 400)
	total := 0
	for r := 0; r < bursts; r++ {
		for i := 0; i < burst; i++ {
			payload[0] = byte(total % 251)
			total++
			if err := a.Multicast(payload); err != nil {
				t.Fatal(err)
			}
		}
		a.Flush()
	}
	// Batch-full auto-flushes plus the explicit flushes: at most one
	// syscall per burst, i.e. a 16x reduction over one-write-per-frame.
	tx, _ := a.Syscalls()
	if tx > bursts+1 {
		t.Fatalf("%d frames took %d send syscalls, want <= %d", total, tx, bursts)
	}
	// Drain at least half (UDP may drop under load) and check the
	// receiver needed far fewer syscalls than datagrams.
	seen := 0
	deadline := time.After(5 * time.Second)
	for seen < total/2 {
		select {
		case f := <-b.Data():
			bufpool.Put(f)
			seen++
		case <-deadline:
			t.Fatalf("received only %d/%d frames", seen, total)
		}
	}
	_, rx := b.Syscalls()
	if rx >= uint64(seen) {
		t.Fatalf("recvmmsg used %d syscalls for >= %d datagrams, want fewer", rx, seen)
	}
}

// TestUDPBatchedAllocs is the zero-allocation gate for the batched wire
// path: staging a burst, flushing it with sendmmsg, receiving it with
// recvmmsg, and recycling the frames must not allocate in steady state.
func TestUDPBatchedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates on the channel hand-off")
	}
	const burst = 8
	a, b := newBatchedUDPPair(t, burst, burst)
	payload := bytes.Repeat([]byte{0x5A}, 1200)
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	step := func() {
		for i := 0; i < burst; i++ {
			if err := a.Multicast(payload); err != nil {
				t.Fatal(err)
			}
		}
		// burst == batch size, so this flush happens on the last
		// Multicast; the explicit call is a no-op safety net.
		a.Flush()
		for i := 0; i < burst; i++ {
			timer.Reset(5 * time.Second)
			select {
			case f := <-b.Data():
				bufpool.Put(f)
			case <-timer.C:
				t.Fatal("timed out waiting for batched frame")
			}
		}
	}
	// Warm-up: size-classed pools, pend slices, writer vectors, reader
	// slots all reach steady-state capacity.
	for i := 0; i < 5; i++ {
		step()
	}
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("batched send+receive allocates %.2f times per burst, want 0", n)
	}
}

// FuzzBatchRecvEquivalence sends the same tagged datagrams to one
// receiver draining with recvmmsg batches and one draining with single
// reads, and requires both to decode the identical set of frames —
// batching must only change how datagrams are split across syscalls,
// never their boundaries or bytes.
func FuzzBatchRecvEquivalence(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add(bytes.Repeat([]byte{0xFF}, 300))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	f.Add(bytes.Repeat([]byte("totem"), 400))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Derive up to 16 payloads of 1..~1500 bytes from the fuzz input.
		var payloads [][]byte
		for off := 0; off < len(data) && len(payloads) < 16; {
			size := 1 + int(data[off])*6
			if off+1+size > len(data) {
				size = len(data) - off - 1
			}
			if size < 1 {
				break
			}
			p := make([]byte, 1+size)
			p[0] = byte(len(payloads)) // tag for dedup/matching
			copy(p[1:], data[off+1:off+1+size])
			payloads = append(payloads, p)
			off += 1 + size
		}
		if len(payloads) == 0 {
			t.Skip("no payloads derivable")
		}

		sender, err := NewUDP(UDPConfig{
			Self:   1,
			Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
			Batch:  BatchConfig{Send: len(payloads) + 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		defer sender.Close()
		mkRecv := func(self evs.ProcID, recvBatch int) *UDP {
			u, err := NewUDP(UDPConfig{
				Self:   self,
				Listen: UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
				Batch:  BatchConfig{Recv: recvBatch},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sender.AddPeer(self, u.LocalAddrs()); err != nil {
				t.Fatal(err)
			}
			return u
		}
		batched := mkRecv(2, 8)
		defer batched.Close()
		single := mkRecv(3, 0)
		defer single.Close()

		// Resend until both receivers saw every tag (UDP may drop);
		// duplicates collapse on the tag.
		gotB := make(map[byte][]byte)
		gotS := make(map[byte][]byte)
		deadline := time.Now().Add(5 * time.Second)
		for len(gotB) < len(payloads) || len(gotS) < len(payloads) {
			if time.Now().After(deadline) {
				t.Fatalf("timeout: batched %d/%d, single %d/%d",
					len(gotB), len(payloads), len(gotS), len(payloads))
			}
			for _, p := range payloads {
				if err := sender.Multicast(p); err != nil {
					t.Fatal(err)
				}
			}
			sender.Flush()
			drain := func(ch <-chan []byte, into map[byte][]byte) {
				for {
					select {
					case fr := <-ch:
						if len(fr) > 0 {
							into[fr[0]] = append([]byte(nil), fr...)
						}
						bufpool.Put(fr)
					case <-time.After(100 * time.Millisecond):
						return
					}
				}
			}
			drain(batched.Data(), gotB)
			drain(single.Data(), gotS)
		}
		for _, want := range payloads {
			tag := want[0]
			if !bytes.Equal(gotB[tag], want) {
				t.Fatalf("batched receiver frame %d: got %x want %x", tag, gotB[tag], want)
			}
			if !bytes.Equal(gotS[tag], want) {
				t.Fatalf("single receiver frame %d: got %x want %x", tag, gotS[tag], want)
			}
		}
	})
}

func TestUDPSmallBatchRoundTrip(t *testing.T) {
	// A tiny batch size still delivers correctly — and on platforms
	// without sendmmsg/recvmmsg this exercises the portable
	// one-syscall-per-datagram fallback behind the same API.
	a, b := newBatchedUDPPair(t, 3, 3)
	for i := 0; i < 3; i++ {
		if err := a.Multicast([]byte{byte(i), 1, 2, 3}); err != nil {
			t.Fatal(err)
		}
	}
	got := collectFrames(t, b.Data(), 3)
	for i := 0; i < 3; i++ {
		if want := []byte{byte(i), 1, 2, 3}; !bytes.Equal(got[byte(i)], want) {
			t.Fatalf("frame %d: got %x want %x", i, got[byte(i)], want)
		}
	}
}
