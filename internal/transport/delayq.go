package transport

import (
	"container/heap"
	"sort"
	"sync"
	"time"
)

// delayQueue runs functions after a delay on a single, lazily started
// drainer goroutine that exits when the queue empties. It replaces the
// previous time.AfterFunc-per-frame scheme: a fault injector delaying
// thousands of frames per second kept that many timer goroutines alive,
// one per in-flight frame; this keeps exactly one regardless of load.
//
// The zero value is ready to use. Callbacks run sequentially on the
// drainer goroutine in deadline order, so they must not block.
type delayQueue struct {
	mu      sync.Mutex
	items   delayHeap
	running bool
	stopped bool
	// kick wakes the drainer when a new item preempts the current
	// earliest deadline.
	kick chan struct{}
}

type delayItem struct {
	at time.Time
	fn func()
}

type delayHeap []delayItem

func (h delayHeap) Len() int           { return len(h) }
func (h delayHeap) Less(i, j int) bool { return h[i].at.Before(h[j].at) }
func (h delayHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)        { *h = append(*h, x.(delayItem)) }
func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = delayItem{}
	*h = old[:n-1]
	return it
}

// after schedules fn to run once delay has elapsed. A non-positive delay
// runs fn synchronously on the caller.
func (q *delayQueue) after(delay time.Duration, fn func()) {
	if delay <= 0 {
		fn()
		return
	}
	at := time.Now().Add(delay)
	q.mu.Lock()
	if q.stopped {
		// The owner is closing: run the callback now, on the caller. It
		// observes the owner's closed state and recycles its buffer.
		q.mu.Unlock()
		fn()
		return
	}
	if q.kick == nil {
		q.kick = make(chan struct{}, 1)
	}
	heap.Push(&q.items, delayItem{at: at, fn: fn})
	start := !q.running
	if start {
		q.running = true
	} else if q.items[0].at.Equal(at) {
		// New earliest deadline: wake the drainer to re-arm its timer.
		select {
		case q.kick <- struct{}{}:
		default:
		}
	}
	q.mu.Unlock()
	if start {
		go q.drain()
	}
}

func (q *delayQueue) drain() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		q.mu.Lock()
		if q.stopped || len(q.items) == 0 {
			q.running = false
			q.mu.Unlock()
			return
		}
		next := q.items[0].at
		if wait := time.Until(next); wait > 0 {
			q.mu.Unlock()
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-q.kick:
			}
			continue
		}
		it := heap.Pop(&q.items).(delayItem)
		q.mu.Unlock()
		it.fn()
	}
}

// stop runs every pending callback immediately (deadline order), lets the
// drainer goroutine exit, and makes later after() calls run their callbacks
// synchronously. Each callback runs exactly once: pending items are moved
// out under the lock, so the drainer cannot double-run them. Callbacks
// observe the owning transport's closed state and recycle their pooled
// buffers, so stopping under load strands neither goroutines nor frames.
// Idempotent.
func (q *delayQueue) stop() {
	q.mu.Lock()
	q.stopped = true
	items := q.items
	q.items = nil
	kick := q.kick
	q.mu.Unlock()
	if kick != nil {
		// Wake a drainer parked on its timer so it sees stopped and exits.
		select {
		case kick <- struct{}{}:
		default:
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].at.Before(items[j].at) })
	for _, it := range items {
		it.fn()
	}
}
