//go:build race

package transport

// raceEnabled lets allocation gates skip under the race detector, whose
// instrumentation allocates on channel hand-offs the gates measure.
const raceEnabled = true
