package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLatencyEmpty(t *testing.T) {
	var l Latency
	if l.Count() != 0 || l.Mean() != 0 || l.Percentile(50) != 0 || l.Max() != 0 || l.WorstMean(0.05) != 0 {
		t.Fatal("empty recorder returned non-zero summaries")
	}
	if l.String() != "latency{empty}" {
		t.Fatalf("String = %q", l.String())
	}
}

func TestLatencySummaries(t *testing.T) {
	var l Latency
	for i := int64(1); i <= 100; i++ {
		l.Add(i * 1000)
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if got := l.Mean(); got != 50500 {
		t.Fatalf("mean = %v, want 50500", got)
	}
	if got := l.Percentile(50); got != 50000 {
		t.Fatalf("p50 = %d, want 50000", got)
	}
	if got := l.Percentile(99); got != 99000 {
		t.Fatalf("p99 = %d, want 99000", got)
	}
	if got := l.Max(); got != 100000 {
		t.Fatalf("max = %d", got)
	}
	// Worst 5% of 1..100 ms = mean of 96..100.
	if got := l.WorstMean(0.05); got != 98000 {
		t.Fatalf("worst 5%% mean = %v, want 98000", got)
	}
	// WorstMean(1.0) equals the mean.
	if got := l.WorstMean(1.0); got != l.Mean() {
		t.Fatalf("worst 100%% mean = %v, want %v", got, l.Mean())
	}
}

func TestAddAfterSortedQuery(t *testing.T) {
	var l Latency
	l.Add(5)
	l.Add(1)
	if l.Max() != 5 {
		t.Fatal("max before second add")
	}
	l.Add(10)
	if l.Max() != 10 {
		t.Fatal("recorder did not re-sort after Add")
	}
}

func TestMergeAndReset(t *testing.T) {
	var a, b Latency
	a.Add(10)
	b.Add(20)
	b.Add(30)
	a.Merge(&b)
	if a.Count() != 3 || a.Mean() != 20 {
		t.Fatalf("after merge: n=%d mean=%v", a.Count(), a.Mean())
	}
	a.Merge(nil)
	if a.Count() != 3 {
		t.Fatal("merge(nil) changed recorder")
	}
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRate(t *testing.T) {
	// 125 MB over 1 s = 1 Gb/s.
	if got := Rate(125_000_000, 1e9); got != 1e9 {
		t.Fatalf("rate = %v", got)
	}
	if got := Rate(100, 0); got != 0 {
		t.Fatalf("rate with zero duration = %v", got)
	}
	if got := Mbps(1e9); got != 1000 {
		t.Fatalf("Mbps = %v", got)
	}
}

// TestQuickPercentileBounds property-tests that percentiles are actual
// samples, ordered, and bracketed by min/max.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var l Latency
		n := 1 + rng.Intn(500)
		min, max := int64(math.MaxInt64), int64(math.MinInt64)
		present := make(map[int64]bool)
		for i := 0; i < n; i++ {
			v := rng.Int63n(1_000_000)
			l.Add(v)
			present[v] = true
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		p50, p95, p99 := l.Percentile(50), l.Percentile(95), l.Percentile(99)
		if !present[p50] || !present[p95] || !present[p99] {
			return false
		}
		if p50 > p95 || p95 > p99 || p99 > l.Max() {
			return false
		}
		if l.Max() != max || l.Percentile(0.0001) < min {
			return false
		}
		wm := l.WorstMean(0.05)
		return wm >= l.Mean()-1e-9 && wm <= float64(max)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
