package stats

import (
	"fmt"
	"strings"
)

// FaultCounter reports the activity of one fault-injection rule: how many
// packets it inspected and how many it dropped, duplicated, or delayed.
// internal/faults produces these; observability tools (cmd/ringtrace, the
// chaos harness) render them with FormatFaults.
type FaultCounter struct {
	// Rule is the rule's name (or its index when unnamed).
	Rule string
	// Matched counts packets the rule's match clauses selected.
	Matched uint64
	// Dropped counts packets the rule discarded.
	Dropped uint64
	// Duplicated counts extra copies the rule created.
	Duplicated uint64
	// Delayed counts packets the rule deferred.
	Delayed uint64
}

// FormatFaults renders fault-rule counters as an aligned text table, one
// rule per line. It returns an empty string for an empty slice.
func FormatFaults(rows []FaultCounter) string {
	if len(rows) == 0 {
		return ""
	}
	nameW := len("rule")
	for _, r := range rows {
		if len(r.Rule) > nameW {
			nameW = len(r.Rule)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %10s %10s %10s %10s\n", nameW, "rule",
		"matched", "dropped", "duplicated", "delayed")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s %10d %10d %10d %10d\n", nameW, r.Rule,
			r.Matched, r.Dropped, r.Duplicated, r.Delayed)
	}
	return b.String()
}
