// Package stats provides the measurement primitives of the benchmark
// harness: a latency recorder with percentile and worst-fraction summaries
// (the paper reports averages and the average of the worst 5% of messages
// per sender), and a simple rate meter.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Latency accumulates latency samples in nanoseconds. The zero value is
// ready to use. Not safe for concurrent use.
type Latency struct {
	samples []int64
	sorted  bool
	sum     int64
}

// Add records one sample.
func (l *Latency) Add(ns int64) {
	l.samples = append(l.samples, ns)
	l.sorted = false
	l.sum += ns
}

// Count returns the number of samples.
func (l *Latency) Count() int { return len(l.samples) }

// Mean returns the average sample, or 0 with no samples.
func (l *Latency) Mean() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	return float64(l.sum) / float64(len(l.samples))
}

func (l *Latency) sort() {
	if !l.sorted {
		sort.Slice(l.samples, func(i, j int) bool { return l.samples[i] < l.samples[j] })
		l.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank, or 0 with no samples.
func (l *Latency) Percentile(p float64) int64 {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	rank := int(math.Ceil(p / 100 * float64(len(l.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(l.samples) {
		rank = len(l.samples)
	}
	return l.samples[rank-1]
}

// Max returns the largest sample, or 0 with no samples.
func (l *Latency) Max() int64 {
	if len(l.samples) == 0 {
		return 0
	}
	l.sort()
	return l.samples[len(l.samples)-1]
}

// WorstMean returns the mean of the worst (largest) fraction frac of the
// samples — e.g. WorstMean(0.05) is the paper's "average latency over the
// worst 5% of messages". It returns 0 with no samples.
func (l *Latency) WorstMean(frac float64) float64 {
	n := len(l.samples)
	if n == 0 || frac <= 0 {
		return 0
	}
	k := int(math.Ceil(frac * float64(n)))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	l.sort()
	var sum int64
	for _, v := range l.samples[n-k:] {
		sum += v
	}
	return float64(sum) / float64(k)
}

// Merge adds all of o's samples into l.
func (l *Latency) Merge(o *Latency) {
	if o == nil || len(o.samples) == 0 {
		return
	}
	l.samples = append(l.samples, o.samples...)
	l.sum += o.sum
	l.sorted = false
}

// Reset discards all samples.
func (l *Latency) Reset() {
	l.samples = l.samples[:0]
	l.sum = 0
	l.sorted = true
}

// String summarizes the distribution in microseconds.
func (l *Latency) String() string {
	if len(l.samples) == 0 {
		return "latency{empty}"
	}
	return fmt.Sprintf("latency{n=%d mean=%.1fµs p50=%.1fµs p99=%.1fµs max=%.1fµs}",
		l.Count(), l.Mean()/1e3, float64(l.Percentile(50))/1e3,
		float64(l.Percentile(99))/1e3, float64(l.Max())/1e3)
}

// Rate converts a byte count over a duration into bits per second.
func Rate(bytes uint64, ns int64) float64 {
	if ns <= 0 {
		return 0
	}
	return float64(bytes) * 8 / (float64(ns) / 1e9)
}

// Mbps formats a bits-per-second value as whole megabits.
func Mbps(bps float64) float64 { return bps / 1e6 }
