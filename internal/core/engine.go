// Package core implements the ordering protocols of the paper: the
// Accelerated Ring protocol and the original Totem-style Ring protocol it
// is compared against. Both are expressed by one engine; the variant is
// selected by the flow-control windows (Accelerated window zero reproduces
// the original sending pattern), the retransmission-request horizon, and
// the token-priority method.
//
// The engine is a deterministic, I/O-free state machine. It consumes token
// and data frames through HandleToken and HandleData and produces effects
// through an Output implementation: token unicasts, data multicasts, and
// delivery events. Time, sockets, and retransmission timers belong to the
// drivers (internal/simproc for simulated time, internal/ringnode for wall
// clock); membership changes belong to internal/membership, which creates
// one engine per ring.
//
// The engine is not safe for concurrent use. Both the paper's daemon and
// our drivers are single-threaded around it by design: limiting the
// ordering service to one core is an explicit goal of the paper.
package core

import (
	"errors"
	"fmt"
	"time"

	"accelring/internal/evs"
	"accelring/internal/flowcontrol"
	"accelring/internal/obs"
	"accelring/internal/seqbuf"
	"accelring/internal/wire"
)

// PriorityMethod selects how a participant decides to raise the token's
// processing priority again after handling a token (paper §III-D).
type PriorityMethod int

const (
	// PriorityAggressive raises the token's priority as soon as any data
	// message that the ring predecessor sent in the next token round is
	// processed. It maximizes token rotation speed; the paper's prototypes
	// use it.
	PriorityAggressive PriorityMethod = iota + 1
	// PriorityConservative waits for a data message that the predecessor
	// sent in the next round after passing the token (a post-token
	// message). It is less sensitive to misconfiguration; production
	// Spread uses it. With an Accelerated window of zero it behaves like
	// the original Ring protocol.
	PriorityConservative
)

func (m PriorityMethod) String() string {
	switch m {
	case PriorityAggressive:
		return "aggressive"
	case PriorityConservative:
		return "conservative"
	default:
		return fmt.Sprintf("priority(%d)", int(m))
	}
}

// Config parameterizes an engine for one ring.
type Config struct {
	// Self is this participant's ID. Must be a ring member.
	Self evs.ProcID
	// Ring is the established configuration (membership's output).
	Ring evs.Configuration
	// Windows are the flow-control parameters. Accelerated == 0 gives the
	// original protocol's sending pattern.
	Windows flowcontrol.Windows
	// Priority is the token-priority method (§III-D). Defaults to
	// PriorityAggressive.
	Priority PriorityMethod
	// DelayedRequests selects the accelerated protocol's retransmission
	// rule: request missing messages only up to the seq carried by the
	// token received in the previous round, guaranteeing they were really
	// sent. When false (original protocol) gaps below the current token's
	// seq are requested immediately.
	DelayedRequests bool
	// InitialSeq is the sequence number ordering starts after; the first
	// message of the ring gets InitialSeq+1.
	InitialSeq uint64
	// MaxRtrPerRound caps how many retransmission requests this
	// participant adds to one token. Defaults to 512.
	MaxRtrPerRound int
	// Observer receives one RoundTrace per token visit plus delivery
	// metrics. Nil disables observation at the cost of one nil check per
	// hook site.
	Observer *obs.RingObserver
}

// Original returns a Config for the original Totem-style Ring protocol:
// no post-token sending, immediate retransmission requests, conservative
// token priority.
func Original(self evs.ProcID, ring evs.Configuration, personal, global int) Config {
	return Config{
		Self: self,
		Ring: ring,
		Windows: flowcontrol.Windows{
			Personal: personal,
			Global:   global,
		},
		Priority: PriorityConservative,
	}
}

// Accelerated returns a Config for the Accelerated Ring protocol with the
// given accelerated window and the aggressive priority method used by the
// paper's prototypes.
func Accelerated(self evs.ProcID, ring evs.Configuration, personal, global, accelerated int) Config {
	return Config{
		Self: self,
		Ring: ring,
		Windows: flowcontrol.Windows{
			Personal:    personal,
			Global:      global,
			Accelerated: accelerated,
		},
		Priority:        PriorityAggressive,
		DelayedRequests: true,
	}
}

func (c *Config) validate() error {
	if c.Self == 0 {
		return errors.New("core: config requires a non-zero Self")
	}
	if !c.Ring.Contains(c.Self) {
		return fmt.Errorf("core: %d is not a member of %v", c.Self, c.Ring)
	}
	if err := c.Windows.Validate(); err != nil {
		return err
	}
	if c.Priority == 0 {
		c.Priority = PriorityAggressive
	}
	if c.Priority != PriorityAggressive && c.Priority != PriorityConservative {
		return fmt.Errorf("core: unknown priority method %d", c.Priority)
	}
	if c.MaxRtrPerRound == 0 {
		c.MaxRtrPerRound = 512
	}
	if c.MaxRtrPerRound < 0 || c.MaxRtrPerRound > wire.MaxRtr {
		return fmt.Errorf("core: MaxRtrPerRound %d out of range (0, %d]", c.MaxRtrPerRound, wire.MaxRtr)
	}
	return nil
}

// Output receives the engine's effects. Implementations must not call back
// into the engine.
//
// Ownership: the engine reuses the structs it passes out on the next round
// (zero-allocation hot path), so implementations must treat every argument
// as borrowed — encode or copy it before returning, and never retain the
// pointer or mutate the struct.
type Output interface {
	// SendToken unicasts the token to the ring successor. The engine
	// retains ownership of the token; implementations must encode or copy
	// it before returning.
	SendToken(*wire.Token)
	// Multicast sends a data message to all ring members. The message and
	// its payload must be treated as read-only and must not be retained:
	// the engine reuses the struct for later sends.
	Multicast(*wire.Data)
	// Deliver hands a message to the application in total order. The
	// Payload slice is handed off (the engine never recycles it), but the
	// call must not block for long.
	Deliver(evs.Message)
}

// Counters exposes engine activity for tests, stats, and benchmarks.
type Counters struct {
	// Rounds is the number of tokens handled.
	Rounds uint64
	// Sent is the number of new data messages this participant initiated.
	Sent uint64
	// Retransmitted is the number of retransmissions this participant
	// answered.
	Retransmitted uint64
	// Requested is the number of retransmission requests this participant
	// added to tokens.
	Requested uint64
	// Delivered is the number of messages delivered to the application.
	Delivered uint64
	// TokensDropped counts duplicate or stale tokens discarded.
	TokensDropped uint64
	// DataDropped counts duplicate or foreign data messages discarded.
	DataDropped uint64
}

type pending struct {
	payload []byte
	service evs.Service
	flags   uint8
	// at is the submit time when the observer has a wall clock (zero
	// otherwise); it feeds the per-service delivery-latency histogram.
	at time.Time
	// held is when the payload first entered a packing bundle (zero when
	// it was never held); it backdates the sampled span's pack stage.
	held time.Time
}

// Engine runs the ordering protocol for one participant on one ring.
type Engine struct {
	cfg Config
	out Output

	ringIdx int
	succ    evs.ProcID
	pred    evs.ProcID

	buf   *seqbuf.Buffer
	sendQ []pending

	// myRound counts tokens handled; data messages carry it.
	myRound uint64
	// lastTokenSeq is the TokenSeq of the last accepted token (duplicate
	// suppression, wraparound-aware).
	lastTokenSeq uint32
	sawToken     bool
	// prevRecvSeq is the seq field of the token received in the previous
	// round: the accelerated protocol's retransmission-request horizon.
	prevRecvSeq uint64
	// lastRoundSent is how many multicasts (new + retransmissions) this
	// participant sent last round, for the fcc update.
	lastRoundSent int
	// aruSentThis/aruSentPrev are the aru values on the tokens this
	// participant sent this round and the round before; their minimum is
	// the safe-delivery line (§III-B4).
	aruSentThis, aruSentPrev uint64
	// delivered is the highest sequence number delivered to the app.
	delivered uint64
	// safeLine is min(aruSentThis, aruSentPrev).
	safeLine uint64

	// dataPriority is true while data messages have processing priority
	// over the token (§III-D).
	dataPriority bool

	counters Counters
	lastSent *wire.Token

	obs *obs.RingObserver
	// mt and fr are the observer's message tracer and flight recorder,
	// cached at construction; both are nil when the feature is off, which
	// is the zero-allocation fast path the AllocsPerRun gates enforce.
	// ringLabel is the observer's shard label, stamped into flight events.
	mt        *obs.MsgTracer
	fr        *obs.FlightRecorder
	ringLabel string
	// submitAt maps assigned seq -> submit time for self-initiated
	// messages still awaiting delivery (only populated when the observer
	// has a clock).
	submitAt map[uint64]time.Time

	// Hot-path scratch. The engine is single-threaded, so one instance of
	// each reusable buffer suffices; together they make the steady-state
	// round allocation-free.
	//
	// outTok is the engine-owned outgoing token: HandleToken treats the
	// received token as read-only and builds the update here, so callers
	// may reuse their decode scratch across rounds.
	outTok wire.Token
	// freeData recycles message structs discarded as stable; msgScratch is
	// the per-round new-message slice; rtScratch is the retransmission
	// copy handed to Multicast.
	freeData   []*wire.Data
	msgScratch []*wire.Data
	rtScratch  wire.Data
	// remScratch/reqScratch/haveScratch back answerRetransmissions and
	// appendRequests across rounds.
	remScratch  []uint64
	reqScratch  []uint64
	haveScratch map[uint64]struct{}
	// sentSampled collects the sampled seqs multicast since the driver
	// last drained them, so it can stamp StageBatchFlush when the staged
	// wire batch actually leaves. Empty (and never appended to) when
	// tracing is off.
	sentSampled []uint64
	// releaseFn is e.putData bound once (binding per discard would
	// allocate).
	releaseFn func(*wire.Data)
}

// New creates an engine. The configuration is validated; the ring must
// contain Self.
func New(cfg Config, out Output) (*Engine, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, errors.New("core: nil Output")
	}
	e := &Engine{
		cfg:         cfg,
		out:         out,
		ringIdx:     cfg.Ring.Index(cfg.Self),
		succ:        cfg.Ring.Successor(cfg.Self),
		pred:        cfg.Ring.Predecessor(cfg.Self),
		buf:         seqbuf.New(cfg.InitialSeq),
		prevRecvSeq: cfg.InitialSeq,
		aruSentThis: cfg.InitialSeq,
		aruSentPrev: cfg.InitialSeq,
		delivered:   cfg.InitialSeq,
		safeLine:    cfg.InitialSeq,
		obs:         cfg.Observer,
		mt:          cfg.Observer.MsgTracer(),
		fr:          cfg.Observer.Recorder(),
	}
	if cfg.Observer != nil {
		e.ringLabel = cfg.Observer.Label
	}
	e.releaseFn = e.putData
	return e, nil
}

// maxFreeData caps the message-struct free list; beyond it, discarded
// structs go to the garbage collector. 4096 covers the deepest buffers the
// flow-control windows produce in practice.
const maxFreeData = 4096

func (e *Engine) getData() *wire.Data {
	if n := len(e.freeData); n > 0 {
		m := e.freeData[n-1]
		e.freeData[n-1] = nil
		e.freeData = e.freeData[:n-1]
		return m
	}
	return new(wire.Data)
}

func (e *Engine) putData(m *wire.Data) {
	*m = wire.Data{} // drop the payload reference; the app may hold it
	if len(e.freeData) < maxFreeData {
		e.freeData = append(e.freeData, m)
	}
}

// NewInitialToken builds the first token of a freshly installed ring. The
// membership representative handles it directly to start rotation.
func NewInitialToken(ring evs.ViewID, initialSeq uint64) *wire.Token {
	return &wire.Token{
		RingID:   ring,
		TokenSeq: 1,
		Round:    1,
		Seq:      initialSeq,
		Aru:      initialSeq,
	}
}

// Self returns this participant's ID.
func (e *Engine) Self() evs.ProcID { return e.cfg.Self }

// Ring returns the configuration the engine is ordering for.
func (e *Engine) Ring() evs.Configuration { return e.cfg.Ring }

// Counters returns a snapshot of the engine's activity counters.
func (e *Engine) Counters() Counters { return e.counters }

// Aru returns the local all-received-up-to value.
func (e *Engine) Aru() uint64 { return e.buf.Aru() }

// High returns the highest sequence number received or assigned.
func (e *Engine) High() uint64 { return e.buf.High() }

// Delivered returns the highest sequence number delivered to the app.
func (e *Engine) Delivered() uint64 { return e.delivered }

// SafeLine returns the stability line: every message at or below it has
// been received by all ring members.
func (e *Engine) SafeLine() uint64 { return e.safeLine }

// QueueLen returns the number of messages waiting for a token.
func (e *Engine) QueueLen() int { return len(e.sendQ) }

// DataPriority reports whether data messages currently have processing
// priority over the token. Drivers with both classes pending consult this.
func (e *Engine) DataPriority() bool { return e.dataPriority }

// DrainSampledSent calls fn for every sampled seq multicast since the
// previous drain and forgets them. Batching drivers call it right after
// flushing their staged wire writes and record StageBatchFlush for each,
// closing the gap between "handed to the transport" and "left in a
// syscall". Always empty when tracing is off, so the drain is free.
func (e *Engine) DrainSampledSent(fn func(seq uint64)) {
	for _, seq := range e.sentSampled {
		fn(seq)
	}
	e.sentSampled = e.sentSampled[:0]
}

// LastToken returns the most recently sent token, for retransmission on a
// token-loss timer, or nil if none has been sent.
func (e *Engine) LastToken() *wire.Token { return e.lastSent }

// Buffered returns the buffered message with the given sequence number, or
// nil. Membership recovery uses it to retransmit old-ring messages.
func (e *Engine) Buffered(seq uint64) *wire.Data { return e.buf.Get(seq) }

// RangeBuffered iterates buffered messages in [from, to] in seq order.
func (e *Engine) RangeBuffered(from, to uint64, fn func(*wire.Data) bool) {
	e.buf.Range(from, to, fn)
}

// ErrPayloadTooLarge is returned by Submit for oversized payloads.
var ErrPayloadTooLarge = fmt.Errorf("core: payload exceeds %d bytes", wire.MaxPayload)

// Submit queues an application payload for ordered multicast with the
// given service level. The payload is not copied; the caller must not
// mutate it afterwards. Messages are sent when the token next arrives,
// subject to flow control.
func (e *Engine) Submit(payload []byte, service evs.Service) error {
	return e.SubmitHeld(payload, service, time.Time{})
}

// SubmitHeld is Submit for payloads that waited in a packing bundle:
// held is when the bundle opened (zero means no hold). Sampled spans of
// the resulting message get a backdated pack stage, so latency
// attribution can separate the pack hold from token wait.
func (e *Engine) SubmitHeld(payload []byte, service evs.Service, held time.Time) error {
	if len(payload) > wire.MaxPayload {
		return ErrPayloadTooLarge
	}
	if !service.Valid() {
		return fmt.Errorf("core: invalid service %d", service)
	}
	e.sendQ = append(e.sendQ, pending{payload: payload, service: service, at: e.obs.Now(), held: held})
	return nil
}

// SubmitControl queues a protocol-internal message (membership recovery
// traffic). It is ordered like any Agreed message but flagged so the
// membership layer can consume it before application delivery.
func (e *Engine) SubmitControl(payload []byte) error {
	if len(payload) > wire.MaxPayload {
		return ErrPayloadTooLarge
	}
	e.sendQ = append(e.sendQ, pending{payload: payload, service: evs.Agreed, flags: wire.FlagControl, at: e.obs.Now()})
	return nil
}

// PendingSubmission is a queued message that never received a sequence
// number, drained from a dissolving ring's engine so membership can
// resubmit it on the next ring.
type PendingSubmission struct {
	Payload []byte
	Service evs.Service
	Control bool
}

// TakePending drains and returns the unsent submission queue (nil when
// empty).
func (e *Engine) TakePending() []PendingSubmission {
	if len(e.sendQ) == 0 {
		return nil
	}
	out := make([]PendingSubmission, len(e.sendQ))
	for i, p := range e.sendQ {
		out[i] = PendingSubmission{
			Payload: p.payload,
			Service: p.service,
			Control: p.flags&wire.FlagControl != 0,
		}
	}
	e.sendQ = nil
	return out
}

// HandleData processes a received data message (paper §III-C): buffer it,
// deliver any newly in-order deliverable messages, and update the token
// priority state (§III-D).
//
// The struct d points to is copied, so the caller may reuse it as decode
// scratch. The Payload slice is not copied: when HandleData returns true
// the engine has taken ownership of it (and of any frame it aliases under
// zero-copy decode) and retains it until the message becomes stable; the
// caller must not recycle that memory. On false the payload was not
// retained.
func (e *Engine) HandleData(d *wire.Data) bool {
	if d.RingID != e.cfg.Ring.ID {
		e.counters.DataDropped++
		return false
	}
	m := e.getData()
	*m = *d
	if !e.buf.Insert(m) {
		e.putData(m)
		e.counters.DataDropped++
		if e.mt.Sampled(d.Seq) {
			// Already buffered (or stable): a duplicate copy arrived.
			e.mt.Record(obs.MsgEvent{Seq: d.Seq, Stage: obs.StageRecvDup, At: e.obs.Now(), Round: d.Round})
		}
		return false
	}
	if e.mt.Sampled(m.Seq) {
		stage := obs.StageRecv
		if m.Flags&wire.FlagRetrans != 0 {
			// First copy arrived via a retransmission, not the original
			// multicast.
			stage = obs.StageRecvDup
		}
		e.mt.Record(obs.MsgEvent{Seq: m.Seq, Stage: stage, At: e.obs.Now(), Round: m.Round})
	}
	e.deliverReady()
	e.maybeRaiseTokenPriority(m)
	return true
}

// maybeRaiseTokenPriority implements the two methods of §III-D. A data
// message from the ring predecessor initiated in the next token round
// proves the next token has been (method 2: post-token flag) or will
// imminently be (method 1) sent.
func (e *Engine) maybeRaiseTokenPriority(d *wire.Data) {
	if !e.dataPriority || d.Sender != e.pred {
		return
	}
	// The predecessor's round r token handling precedes ours for every
	// ring position except the representative, whose predecessor (the last
	// member) handles round r after the representative does.
	expected := e.myRound + 1
	if e.ringIdx == 0 {
		expected = e.myRound
	}
	if d.Round < expected {
		return
	}
	if e.cfg.Priority == PriorityConservative && !d.PostToken() {
		return
	}
	e.dataPriority = false
}

// HandleToken processes a received token (paper §III-B): answer
// retransmission requests, multicast the pre-token share of this round's
// new messages, update and send the token, multicast the post-token share,
// then deliver and discard.
//
// The received token is read-only: the engine builds the outgoing token in
// its own storage, so the caller may reuse t (and the Rtr backing) as
// decode scratch for the next frame.
func (e *Engine) HandleToken(t *wire.Token) {
	if t.RingID != e.cfg.Ring.ID {
		e.counters.TokensDropped++
		return
	}
	// Wraparound-aware duplicate/stale suppression for retransmitted
	// tokens.
	if e.sawToken && int32(t.TokenSeq-e.lastTokenSeq) <= 0 {
		e.counters.TokensDropped++
		return
	}
	e.sawToken = true
	e.lastTokenSeq = t.TokenSeq
	e.myRound++
	e.counters.Rounds++

	recvSeq := t.Seq
	recvAru := t.Aru
	recvFcc := int(t.Fcc)
	recvTokenSeq := t.TokenSeq
	tokStart := e.obs.Now()
	requestedBefore := e.counters.Requested
	if e.fr != nil {
		e.fr.Record(obs.FlightEvent{
			Kind: obs.FlightTokenRx, Ring: e.ringLabel, At: tokStart,
			Seq: t.Seq, Aru: t.Aru, Fcc: t.Fcc, Count: len(t.Rtr),
		})
	}

	// Phase 1 (§III-B1): answer retransmission requests, capped at the
	// Global window so a corrupt or adversarial Rtr list cannot trigger an
	// unbounded pre-token burst. Requests beyond the budget stay on the
	// outgoing token for later rounds.
	numRetrans, remaining := e.answerRetransmissions(t.Rtr, e.cfg.Windows.RetransBudget())

	// Decide the complete set of new messages for this round.
	numToSend := e.cfg.Windows.NumToSend(len(e.sendQ), recvFcc, numRetrans)
	newMsgs := e.takeMessages(numToSend, recvSeq)
	pre, _ := e.cfg.Windows.Split(numToSend)

	// Self-receive the full round's messages now: the token must reflect
	// every message this participant will send this round.
	for _, m := range newMsgs {
		e.buf.Insert(m)
	}

	// Pre-token multicasting.
	for _, m := range newMsgs[:pre] {
		e.out.Multicast(m)
		if e.mt.Sampled(m.Seq) {
			e.mt.Record(obs.MsgEvent{Seq: m.Seq, Stage: obs.StageSentPre, At: e.obs.Now(), Round: e.myRound})
			e.sentSampled = append(e.sentSampled, m.Seq)
		}
	}

	// Phase 2 (§III-B2): update and send the token. From here the update
	// is built in the engine-owned outTok; the received token stays
	// untouched.
	out := &e.outTok
	newSeq := recvSeq + uint64(numToSend)
	out.RingID = t.RingID
	out.Seq = newSeq
	out.Aru = t.Aru
	out.AruID = t.AruID
	e.updateAru(out, recvAru, recvSeq, newSeq)
	out.Fcc = flowcontrol.NextFcc(uint32(recvFcc), e.lastRoundSent, numRetrans+numToSend)
	out.Rtr = e.appendRequests(remaining, recvSeq)
	out.TokenSeq = t.TokenSeq + 1
	out.Round = t.Round
	if e.ringIdx == 0 {
		out.Round++
	}
	e.aruSentPrev = e.aruSentThis
	e.aruSentThis = out.Aru
	e.lastSent = out
	e.out.SendToken(out)
	if e.fr != nil {
		e.fr.Record(obs.FlightEvent{
			Kind: obs.FlightTokenTx, Ring: e.ringLabel,
			Seq: out.Seq, Aru: out.Aru, Fcc: out.Fcc, Count: len(out.Rtr),
		})
	}
	var hold time.Duration
	if !tokStart.IsZero() {
		hold = e.obs.Now().Sub(tokStart)
	}

	// Phase 3 (§III-B3): post-token multicasting.
	for _, m := range newMsgs[pre:] {
		m.Flags |= wire.FlagPostToken
		e.out.Multicast(m)
		if e.mt.Sampled(m.Seq) {
			e.mt.Record(obs.MsgEvent{Seq: m.Seq, Stage: obs.StageSentPost, At: e.obs.Now(), Round: e.myRound})
			e.sentSampled = append(e.sentSampled, m.Seq)
		}
	}

	// Phase 4 (§III-B4): deliver and discard.
	if min := minU64(e.aruSentThis, e.aruSentPrev); min > e.safeLine {
		e.safeLine = min
	}
	e.deliverReady()
	e.discardStable()

	e.lastRoundSent = numToSend + numRetrans
	e.prevRecvSeq = recvSeq
	e.dataPriority = true

	if e.obs != nil {
		e.obs.OnRound(obs.RoundTrace{
			At:            tokStart,
			Round:         e.myRound,
			TokenSeq:      recvTokenSeq,
			RecvSeq:       recvSeq,
			SentSeq:       newSeq,
			Aru:           out.Aru,
			Fcc:           out.Fcc,
			New:           numToSend,
			Pre:           pre,
			Post:          numToSend - pre,
			Retransmitted: numRetrans,
			Requested:     int(e.counters.Requested - requestedBefore),
			Hold:          hold,
		})
	}
}

// answerRetransmissions multicasts requested messages this participant
// holds, up to budget, and returns how many it sent plus the requests it
// did not answer (missing here, or beyond the budget — those stay on the
// token so they are served in a later round or by another holder). The
// returned slice aliases engine scratch and is valid until the next round.
func (e *Engine) answerRetransmissions(rtr []uint64, budget int) (int, []uint64) {
	if len(rtr) == 0 {
		return 0, nil
	}
	n := 0
	var firstAns uint64
	remaining := e.remScratch[:0]
	for _, seq := range rtr {
		if seq <= e.buf.Floor() {
			// Stable at this participant: every member already has it;
			// the request is stale. Drop it.
			continue
		}
		if d := e.buf.Get(seq); d != nil && n < budget {
			rd := &e.rtScratch
			*rd = *d
			rd.Flags |= wire.FlagRetrans
			rd.Flags &^= wire.FlagPostToken
			e.out.Multicast(rd)
			e.counters.Retransmitted++
			if n == 0 {
				firstAns = seq
			}
			n++
			if e.mt.Sampled(seq) {
				e.mt.Record(obs.MsgEvent{Seq: seq, Stage: obs.StageRetransmit, At: e.obs.Now(), Round: e.myRound})
			}
			continue
		}
		remaining = append(remaining, seq)
	}
	e.remScratch = remaining
	if n > 0 && e.fr != nil {
		e.fr.Record(obs.FlightEvent{Kind: obs.FlightRetransAns, Ring: e.ringLabel, Seq: firstAns, Count: n})
	}
	return n, remaining
}

// takeMessages dequeues n pending payloads and stamps them with final
// sequence numbers starting at afterSeq+1 and the current round.
func (e *Engine) takeMessages(n int, afterSeq uint64) []*wire.Data {
	if n == 0 {
		return nil
	}
	msgs := e.msgScratch[:0]
	for i := 0; i < n; i++ {
		p := e.sendQ[i]
		seq := afterSeq + uint64(i) + 1
		if !p.at.IsZero() {
			if e.submitAt == nil {
				e.submitAt = make(map[uint64]time.Time)
			}
			e.submitAt[seq] = p.at
		}
		if e.mt.Sampled(seq) {
			if !p.held.IsZero() {
				// The payload waited in a packing bundle before it could
				// be submitted; backdate a pack stage to the hold start so
				// the span attributes that wait separately.
				e.mt.Record(obs.MsgEvent{Seq: seq, Stage: obs.StagePack, At: p.held, Round: e.myRound})
			}
			// Submit stage carries the original submit time when the
			// observer has a clock, so spans show queueing delay too.
			at := p.at
			if at.IsZero() {
				at = e.obs.Now()
			}
			e.mt.Record(obs.MsgEvent{Seq: seq, Stage: obs.StageSubmit, At: at, Round: e.myRound})
		}
		m := e.getData()
		*m = wire.Data{
			RingID:  e.cfg.Ring.ID,
			Seq:     seq,
			Sender:  e.cfg.Self,
			Round:   e.myRound,
			Service: p.service,
			Flags:   p.flags,
			Payload: p.payload,
		}
		msgs = append(msgs, m)
	}
	e.msgScratch = msgs
	// Release references promptly; keep the tail.
	copy(e.sendQ, e.sendQ[n:])
	for i := len(e.sendQ) - n; i < len(e.sendQ); i++ {
		e.sendQ[i] = pending{}
	}
	e.sendQ = e.sendQ[:len(e.sendQ)-n]
	e.counters.Sent += uint64(n)
	return msgs
}

// updateAru applies the aru rules of §III-B2. The token's AruID records
// who lowered the aru; only that participant may raise it again, which
// realizes "the received token's aru has not changed since the participant
// lowered it".
func (e *Engine) updateAru(t *wire.Token, recvAru, recvSeq, newSeq uint64) {
	myAru := e.buf.Aru()
	switch {
	case myAru < recvAru:
		t.Aru = myAru
		t.AruID = e.cfg.Self
	case t.AruID == e.cfg.Self:
		t.Aru = myAru
		if t.Aru >= newSeq {
			t.Aru = newSeq
			t.AruID = 0
		}
	case recvAru == recvSeq:
		t.Aru = newSeq
	}
}

// appendRequests adds this participant's missing sequence numbers to the
// unanswered requests, respecting the variant's horizon: the previous
// round's token seq for the accelerated protocol (one round late, so the
// messages are guaranteed to have been sent), the current token's seq for
// the original protocol.
func (e *Engine) appendRequests(remaining []uint64, recvSeq uint64) []uint64 {
	horizon := recvSeq
	if e.cfg.DelayedRequests {
		horizon = e.prevRecvSeq
	}
	// Copy into the engine-owned request scratch: the outgoing token's Rtr
	// must not alias remScratch (reused next round) or caller memory.
	out := append(e.reqScratch[:0], remaining...)
	if len(remaining) > 0 {
		// Dedup set, only needed when there are unanswered requests.
		// Lookups on the nil map below are fine when it stays empty.
		if e.haveScratch == nil {
			e.haveScratch = make(map[uint64]struct{}, len(remaining))
		}
		clear(e.haveScratch)
		for _, s := range remaining {
			e.haveScratch[s] = struct{}{}
		}
	}
	before := len(out)
	budget := e.cfg.MaxRtrPerRound
	for seq := e.buf.Aru() + 1; seq <= horizon && budget > 0; seq++ {
		if e.buf.Has(seq) {
			continue
		}
		if len(remaining) > 0 {
			if _, dup := e.haveScratch[seq]; dup {
				continue
			}
		}
		out = append(out, seq)
		budget--
		if e.mt.Sampled(seq) {
			e.mt.Record(obs.MsgEvent{Seq: seq, Stage: obs.StageRtrRequest, At: e.obs.Now(), Round: e.myRound})
		}
		if len(out) >= wire.MaxRtr {
			break
		}
	}
	e.counters.Requested += uint64(len(out) - before)
	if added := len(out) - before; added > 0 && e.fr != nil {
		e.fr.Record(obs.FlightEvent{Kind: obs.FlightRetransReq, Ring: e.ringLabel, Seq: out[before], Count: added})
	}
	e.reqScratch = out
	return out
}

// deliverReady delivers messages in strict sequence order: a message is
// delivered once all lower-sequenced messages are delivered and, for Safe
// service, once its sequence is at or below the stability line. An
// undeliverable safe message blocks everything behind it — that is what
// total order means.
func (e *Engine) deliverReady() {
	before := e.delivered
	for {
		next := e.delivered + 1
		d := e.buf.Get(next)
		if d == nil {
			break
		}
		if d.Service.NeedsStability() && next > e.safeLine {
			break
		}
		e.out.Deliver(evs.Message{
			Seq:     d.Seq,
			Sender:  d.Sender,
			Round:   d.Round,
			Service: d.Service,
			Config:  e.cfg.Ring.ID,
			Control: d.Control(),
			Payload: d.Payload,
		})
		e.delivered = next
		e.counters.Delivered++
		if e.obs != nil {
			var lat time.Duration
			if at, ok := e.submitAt[next]; ok {
				delete(e.submitAt, next)
				lat = e.obs.Now().Sub(at)
			}
			e.obs.OnDeliver(d.Service.String(), lat)
			if e.mt.Sampled(next) {
				e.mt.Record(obs.MsgEvent{Seq: next, Stage: obs.StageDeliver, At: e.obs.Now(), Round: d.Round, Service: d.Service.String()})
			}
		}
	}
	if e.fr != nil && e.delivered > before {
		e.fr.Record(obs.FlightEvent{Kind: obs.FlightDeliver, Ring: e.ringLabel, Seq: e.delivered, Count: int(e.delivered - before)})
	}
}

// discardStable drops messages every member has received (seq <= the safe
// line). deliverReady has always delivered them first: the safe line never
// exceeds the local aru, below which there are no gaps.
func (e *Engine) discardStable() {
	upTo := minU64(e.safeLine, e.delivered)
	if upTo <= e.buf.Floor() {
		return
	}
	// Discard errors cannot occur: upTo <= safeLine <= aru by construction.
	// Dropped structs go back on the free list; their payloads stay with
	// whoever received them (the app, via Deliver).
	_, _ = e.buf.DiscardFunc(upTo, e.releaseFn)
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
