package core

import (
	"fmt"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/wire"
)

// tok builds a minimal valid token for the ring: Aru pinned below Seq by a
// foreign AruID so nothing becomes stable and the buffer keeps everything.
func tok(ring evs.Configuration, tokenSeq uint32, seq uint64) *wire.Token {
	return &wire.Token{
		RingID:   ring.ID,
		TokenSeq: tokenSeq,
		Seq:      seq,
		Aru:      0,
		AruID:    2,
		Round:    uint64(tokenSeq),
	}
}

// TestTokenSeqWraparoundGuard exercises the duplicate-token guard across the
// uint32 TokenSeq wrap: fresh tokens are accepted straight through the
// wrap, duplicates and stale tokens are dropped on both sides of it.
func TestTokenSeqWraparoundGuard(t *testing.T) {
	ring := ringOf(1, 2)
	out := &testOut{}
	eng, err := New(Accelerated(1, ring, 5, 100, 3), out)
	if err != nil {
		t.Fatal(err)
	}

	near := ^uint32(0) // 0xFFFFFFFF
	steps := []struct {
		tokenSeq uint32
		accept   bool
	}{
		{near - 1, true},  // first token seen
		{near - 1, false}, // exact duplicate
		{near, true},      // next
		{0, true},         // near+1 wraps to 0: accepted only via int32 math
		{near, false},     // stale after the wrap
		{1, true},         // continues past the wrap
		{0, false},        // stale duplicate of the wrapped token
	}

	var wantRounds, wantDropped uint64
	for i, s := range steps {
		before := eng.Counters().Rounds
		eng.HandleToken(tok(ring, s.tokenSeq, 0))
		after := eng.Counters().Rounds
		accepted := after > before
		if accepted != s.accept {
			t.Fatalf("step %d (TokenSeq=%#x): accepted=%v, want %v", i, s.tokenSeq, accepted, s.accept)
		}
		if s.accept {
			wantRounds++
		} else {
			wantDropped++
		}
	}
	c := eng.Counters()
	if c.Rounds != wantRounds || c.TokensDropped != wantDropped {
		t.Fatalf("counters: rounds=%d dropped=%d, want %d/%d", c.Rounds, c.TokensDropped, wantRounds, wantDropped)
	}
}

// TestReinstallResetsTokenSeqGuard pins the invariant that makes stale
// lastTokenSeq/sawToken state across ring installs impossible: membership
// creates a brand-new engine for every install (see membership.install),
// and a fresh engine accepts the new ring's initial token (TokenSeq 1)
// unconditionally. The same token fed to the old engine — simulating state
// carried over — is discarded, which is exactly the bug the fresh engine
// prevents: the first tokens of a new ring silently dropped.
func TestReinstallResetsTokenSeqGuard(t *testing.T) {
	ring := ringOf(1, 2)
	oldOut := &testOut{}
	oldEng, err := New(Accelerated(1, ring, 5, 100, 3), oldOut)
	if err != nil {
		t.Fatal(err)
	}
	// The old ring has progressed: its guard sits at TokenSeq 5.
	for seq := uint32(1); seq <= 5; seq++ {
		oldEng.HandleToken(tok(ring, seq, 0))
	}
	if got := oldEng.Counters().Rounds; got != 5 {
		t.Fatalf("old engine handled %d rounds, want 5", got)
	}

	// A new ring's initial token starts over at TokenSeq 1. Against the old
	// engine's stale guard it would be discarded...
	initial := NewInitialToken(ring.ID, 0)
	dropsBefore := oldEng.Counters().TokensDropped
	oldEng.HandleToken(initial)
	if oldEng.Counters().TokensDropped != dropsBefore+1 {
		t.Fatalf("stale guard did not discard the new ring's initial token (the hazard this test pins)")
	}

	// ...but every install constructs a fresh engine, whose guard is reset.
	freshOut := &testOut{}
	freshEng, err := New(Accelerated(1, ring, 5, 100, 3), freshOut)
	if err != nil {
		t.Fatal(err)
	}
	freshEng.HandleToken(NewInitialToken(ring.ID, 0))
	c := freshEng.Counters()
	if c.Rounds != 1 || c.TokensDropped != 0 {
		t.Fatalf("fresh engine: rounds=%d dropped=%d, want 1/0 (initial token must be accepted)", c.Rounds, c.TokensDropped)
	}
}

// TestOversizedRtrCappedAtGlobalWindow feeds an engine holding 40 messages
// a token whose Rtr list requests all of them. The engine must answer at
// most Global-window retransmissions this round and keep the rest on the
// outgoing token instead of blasting an unbounded pre-token burst.
func TestOversizedRtrCappedAtGlobalWindow(t *testing.T) {
	const (
		personal = 5
		global   = 10
		held     = 40
	)
	ring := ringOf(1, 2)
	out := &testOut{}
	eng, err := New(Accelerated(1, ring, personal, global, 3), out)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < held; i++ {
		if err := eng.Submit([]byte(fmt.Sprintf("m-%d", i)), evs.Agreed); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the send queue: 8 rounds of 5 new messages each, all retained
	// in the buffer (the token's Aru stays 0, so nothing becomes stable).
	seq := uint64(0)
	for round := uint32(1); round <= held/personal; round++ {
		eng.HandleToken(tok(ring, round, seq))
		seq += personal
	}
	out.drain()

	// A token requesting every held message at once (4x the Global window).
	req := tok(ring, held/personal+1, seq)
	for s := uint64(1); s <= held; s++ {
		req.Rtr = append(req.Rtr, s)
	}
	eng.HandleToken(req)

	var retrans int
	var outTok *wire.Token
	for _, ef := range out.drain() {
		switch {
		case ef.data != nil && ef.data.Retrans():
			retrans++
		case ef.token != nil:
			outTok = ef.token
		}
	}
	if retrans != global {
		t.Fatalf("answered %d retransmissions, want exactly the Global window %d", retrans, global)
	}
	if got := eng.Counters().Retransmitted; got != global {
		t.Fatalf("Retransmitted counter %d, want %d", got, global)
	}
	if outTok == nil {
		t.Fatal("no outgoing token")
	}
	if want := held - global; len(outTok.Rtr) != want {
		t.Fatalf("outgoing token carries %d deferred requests, want %d", len(outTok.Rtr), want)
	}
	for i, s := range outTok.Rtr {
		if s != uint64(global+i+1) {
			t.Fatalf("deferred request %d is seq %d, want %d", i, s, global+i+1)
		}
	}
}
