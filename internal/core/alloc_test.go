package core

import (
	"testing"

	"accelring/internal/evs"
	"accelring/internal/wire"
)

// These tests pin the zero-allocation hot path: encode, decode, data
// receive, and a full token round must not allocate in steady state.
// They are regression gates, not benchmarks — a change that reintroduces
// a per-frame or per-round allocation fails them deterministically
// instead of quietly shifting a benchmark number.

func TestAllocFreeEncode(t *testing.T) {
	d := wire.Data{
		RingID:  evs.ViewID{Rep: 1, Seq: 1},
		Seq:     1,
		Sender:  1,
		Round:   1,
		Service: evs.Agreed,
		Payload: make([]byte, 1350),
	}
	buf := make([]byte, 0, d.EncodedLen())
	tok := wire.Token{RingID: d.RingID, TokenSeq: 1, Rtr: make([]uint64, 3, 8)}
	tbuf := make([]byte, 0, tok.EncodedLen())
	if n := testing.AllocsPerRun(200, func() {
		buf = d.AppendTo(buf[:0])
		tbuf = tok.AppendTo(tbuf[:0])
	}); n != 0 {
		t.Fatalf("steady-state encode allocates %.1f times per op, want 0", n)
	}
}

func TestAllocFreeDecode(t *testing.T) {
	d := wire.Data{
		RingID:  evs.ViewID{Rep: 1, Seq: 1},
		Seq:     1,
		Sender:  1,
		Round:   1,
		Service: evs.Agreed,
		Payload: make([]byte, 1350),
	}
	frame := d.AppendTo(nil)
	tok := wire.Token{RingID: d.RingID, TokenSeq: 1, Rtr: []uint64{7, 9, 11}}
	tframe := tok.AppendTo(nil)
	var ds wire.Data
	var ts wire.Token
	// Warm up: the token scratch grows its Rtr backing on first decode.
	if err := ts.DecodeFrom(tframe); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := ds.DecodeFrom(frame); err != nil {
			t.Fatal(err)
		}
		if err := ts.DecodeFrom(tframe); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("scratch decode allocates %.1f times per op, want 0", n)
	}
}

func TestAllocFreeHandleData(t *testing.T) {
	ring := ringOf(1, 2)
	eng, err := New(Accelerated(2, ring, 64, 10000, 32), &nullOut{})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1350)
	seq := uint64(0)
	tok := wire.Token{RingID: ring.ID}
	step := func() {
		seq++
		d := wire.Data{
			RingID: ring.ID, Seq: seq, Sender: 1, Round: 1,
			Service: evs.Agreed, Payload: payload,
		}
		eng.HandleData(&d)
		if seq%64 == 0 {
			tok.TokenSeq += 2
			tok.Seq = seq
			tok.Aru = seq
			eng.HandleToken(&tok)
		}
	}
	// Warm up past map growth, free-list priming, and scratch growth.
	for i := 0; i < 64*6; i++ {
		step()
	}
	// The seqbuf map occasionally allocates an overflow bucket even at a
	// bounded working set, so measure the total over many runs rather
	// than requiring every single run to be clean.
	if n := testing.AllocsPerRun(64*20, step); n != 0 {
		t.Fatalf("steady-state HandleData allocates %.2f times per op, want 0", n)
	}
}

func TestAllocFreeTokenRound(t *testing.T) {
	ring := ringOf(1)
	out := &nullOut{}
	const window = 32
	eng, err := New(Accelerated(1, ring, window, 10000, 16), out)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 1350)
	step := func() {
		for k := 0; k < window; k++ {
			if err := eng.Submit(payload, evs.Agreed); err != nil {
				t.Fatal(err)
			}
		}
		eng.HandleToken(&out.tok)
	}
	eng.HandleToken(NewInitialToken(ring.ID, 0))
	for i := 0; i < 8; i++ {
		step() // warm up: sendQ backing, msg scratch, free list
	}
	if n := testing.AllocsPerRun(100, step); n != 0 {
		t.Fatalf("steady-state token round allocates %.2f times per op, want 0", n)
	}
}
