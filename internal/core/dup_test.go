package core

import (
	"fmt"
	"testing"

	"accelring/internal/evs"
)

// TestDuplicateFramesNoDoubleDelivery runs a full ring with EVERY data
// frame and EVERY token delivered twice, as a duplicating network would
// produce. The engines must discard the copies: total order holds, no
// (sender, seq) is delivered twice, and the duplicate counters account
// for the discarded frames.
func TestDuplicateFramesNoDoubleDelivery(t *testing.T) {
	ring := ringOf(1, 2, 3, 4)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.dupData = true
	h.dupToken = true

	for round := 0; round < 5; round++ {
		for _, id := range ring.Members {
			h.submit(id, evs.Agreed, fmt.Sprintf("m-%d-%d", id, round))
		}
		h.round()
	}
	h.round() // flush

	h.assertTotalOrder()
	for _, id := range ring.Members {
		seen := make(map[string]bool)
		ms := h.outs[id].messages()
		if len(ms) != 4*5 {
			t.Fatalf("member %d delivered %d messages, want 20", id, len(ms))
		}
		for _, m := range ms {
			k := fmt.Sprintf("%d/%d", m.Sender, m.Seq)
			if seen[k] {
				t.Fatalf("member %d delivered %s twice", id, k)
			}
			seen[k] = true
		}
		c := h.engines[id].Counters()
		if c.DataDropped == 0 {
			t.Errorf("member %d discarded no duplicate data frames", id)
		}
		if c.TokensDropped == 0 {
			t.Errorf("member %d discarded no duplicate tokens", id)
		}
	}
}
