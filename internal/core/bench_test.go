package core

import (
	"testing"

	"accelring/internal/evs"
	"accelring/internal/wire"
)

// nullOut discards all engine effects: these benchmarks measure the pure
// protocol-processing cost per message and per round, the quantity that
// bounds throughput on 10 GbE fabrics per the paper.
type nullOut struct{ tokens []*wire.Token }

func (o *nullOut) SendToken(t *wire.Token) {
	cp := *t
	cp.Rtr = append([]uint64(nil), t.Rtr...)
	o.tokens = append(o.tokens[:0], &cp)
}
func (o *nullOut) Multicast(*wire.Data)  {}
func (o *nullOut) Deliver(evs.Event)     {}

// BenchmarkHandleData measures receive-path cost for 1350-byte messages.
func BenchmarkHandleData(b *testing.B) {
	ring := ringOf(1, 2)
	out := &nullOut{}
	eng, err := New(Accelerated(2, ring, 64, 10000, 32), out)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1350)
	b.ReportAllocs()
	b.SetBytes(1350)
	for i := 0; i < b.N; i++ {
		eng.HandleData(&wire.Data{
			RingID:  ring.ID,
			Seq:     uint64(i + 1),
			Sender:  1,
			Round:   1,
			Service: evs.Agreed,
			Payload: payload,
		})
	}
}

// BenchmarkTokenRound measures a full one-participant round: token in,
// personal-window sends, token out, delivery, discard.
func BenchmarkTokenRound(b *testing.B) {
	ring := ringOf(1)
	out := &nullOut{}
	const window = 32
	eng, err := New(Accelerated(1, ring, window, 10000, 16), out)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1350)
	tok := NewInitialToken(ring.ID, 0)
	b.ReportAllocs()
	b.SetBytes(window * 1350)
	for i := 0; i < b.N; i++ {
		for k := 0; k < window; k++ {
			if err := eng.Submit(payload, evs.Agreed); err != nil {
				b.Fatal(err)
			}
		}
		eng.HandleToken(tok)
		tok = out.tokens[0]
	}
	if got := eng.Counters().Sent; got != uint64(b.N*window) {
		b.Fatalf("sent %d, want %d", got, b.N*window)
	}
}

// BenchmarkWireRoundTrip measures the codec cost included in every
// simulated and real hop.
func BenchmarkWireRoundTrip(b *testing.B) {
	d := wire.Data{
		RingID:  evs.ViewID{Rep: 1, Seq: 1},
		Seq:     1,
		Sender:  1,
		Round:   1,
		Service: evs.Agreed,
		Payload: make([]byte, 1350),
	}
	buf := make([]byte, 0, d.EncodedLen())
	b.ReportAllocs()
	b.SetBytes(int64(d.EncodedLen()))
	for i := 0; i < b.N; i++ {
		buf = d.AppendTo(buf[:0])
		if _, err := wire.DecodeData(buf); err != nil {
			b.Fatal(err)
		}
	}
}
