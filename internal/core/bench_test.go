package core

import (
	"testing"

	"accelring/internal/evs"
	"accelring/internal/wire"
)

// nullOut discards all engine effects: these benchmarks measure the pure
// protocol-processing cost per message and per round, the quantity that
// bounds throughput on 10 GbE fabrics per the paper. The sent token is
// kept by value in reused storage so the harness itself stays
// allocation-free.
type nullOut struct {
	tok    wire.Token
	rtrBuf []uint64
	sent   bool
}

func (o *nullOut) SendToken(t *wire.Token) {
	o.rtrBuf = append(o.rtrBuf[:0], t.Rtr...)
	o.tok = *t
	o.tok.Rtr = o.rtrBuf
	o.sent = true
}
func (o *nullOut) Multicast(*wire.Data) {}
func (o *nullOut) Deliver(evs.Message)  {}

// BenchmarkHandleData measures steady-state receive-path cost for
// 1350-byte messages: every 64 messages a token round advances the
// stability line so the receive buffer stays bounded and message structs
// recycle through the engine's free list, exactly as in a live ring.
func BenchmarkHandleData(b *testing.B) {
	ring := ringOf(1, 2)
	out := &nullOut{}
	eng, err := New(Accelerated(2, ring, 64, 10000, 32), out)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1350)
	var d wire.Data
	tok := wire.Token{RingID: ring.ID}
	b.ReportAllocs()
	b.SetBytes(1350)
	for i := 0; i < b.N; i++ {
		seq := uint64(i + 1)
		d = wire.Data{
			RingID:  ring.ID,
			Seq:     seq,
			Sender:  1,
			Round:   1,
			Service: evs.Agreed,
			Payload: payload,
		}
		eng.HandleData(&d)
		if seq%64 == 0 {
			// One ring round: everything sent so far is received
			// everywhere (Seq == Aru), which advances the safe line and
			// discards the stable prefix.
			tok.TokenSeq += 2
			tok.Seq = seq
			tok.Aru = seq
			eng.HandleToken(&tok)
		}
	}
}

// BenchmarkTokenRound measures a full one-participant round: token in,
// personal-window sends, token out, delivery, discard.
func BenchmarkTokenRound(b *testing.B) {
	ring := ringOf(1)
	out := &nullOut{}
	const window = 32
	eng, err := New(Accelerated(1, ring, window, 10000, 16), out)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 1350)
	tok := NewInitialToken(ring.ID, 0)
	eng.HandleToken(tok) // prime: engine round state, scratch growth
	b.ReportAllocs()
	b.SetBytes(window * 1350)
	for i := 0; i < b.N; i++ {
		for k := 0; k < window; k++ {
			if err := eng.Submit(payload, evs.Agreed); err != nil {
				b.Fatal(err)
			}
		}
		eng.HandleToken(&out.tok)
	}
	if got := eng.Counters().Sent; got != uint64(b.N*window) {
		b.Fatalf("sent %d, want %d", got, b.N*window)
	}
}

// BenchmarkWireRoundTrip measures the codec cost included in every
// simulated and real hop, using the zero-copy scratch decoder the
// drivers use on the hot path.
func BenchmarkWireRoundTrip(b *testing.B) {
	d := wire.Data{
		RingID:  evs.ViewID{Rep: 1, Seq: 1},
		Seq:     1,
		Sender:  1,
		Round:   1,
		Service: evs.Agreed,
		Payload: make([]byte, 1350),
	}
	buf := make([]byte, 0, d.EncodedLen())
	var scratch wire.Data
	b.ReportAllocs()
	b.SetBytes(int64(d.EncodedLen()))
	for i := 0; i < b.N; i++ {
		buf = d.AppendTo(buf[:0])
		if err := scratch.DecodeFrom(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTripCopy is the copying-decode variant, for comparing
// the zero-copy mode's saving.
func BenchmarkWireRoundTripCopy(b *testing.B) {
	d := wire.Data{
		RingID:  evs.ViewID{Rep: 1, Seq: 1},
		Seq:     1,
		Sender:  1,
		Round:   1,
		Service: evs.Agreed,
		Payload: make([]byte, 1350),
	}
	buf := make([]byte, 0, d.EncodedLen())
	b.ReportAllocs()
	b.SetBytes(int64(d.EncodedLen()))
	for i := 0; i < b.N; i++ {
		buf = d.AppendTo(buf[:0])
		if _, err := wire.DecodeData(buf); err != nil {
			b.Fatal(err)
		}
	}
}
