package core

import (
	"fmt"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/wire"
)

// effect records one output of an engine, preserving interleaving so tests
// can assert on the pre-token/post-token send pattern.
type effect struct {
	token *wire.Token
	data  *wire.Data
}

// testOut collects an engine's outputs. Tokens and data are deep-copied via
// the wire codec, exactly as a real transport would, so later mutation by
// the engine cannot corrupt recorded effects.
type testOut struct {
	effects   []effect
	delivered []evs.Message
	// onDeliver, when set, observes each delivery as it happens (used by
	// invariant checks).
	onDeliver func(evs.Message)
}

func (o *testOut) SendToken(t *wire.Token) {
	cp, err := wire.DecodeToken(t.AppendTo(nil))
	if err != nil {
		panic(fmt.Sprintf("token failed wire round trip: %v", err))
	}
	o.effects = append(o.effects, effect{token: cp})
}

func (o *testOut) Multicast(d *wire.Data) {
	cp, err := wire.DecodeData(d.AppendTo(nil))
	if err != nil {
		panic(fmt.Sprintf("data failed wire round trip: %v", err))
	}
	o.effects = append(o.effects, effect{data: cp})
}

func (o *testOut) Deliver(m evs.Message) {
	o.delivered = append(o.delivered, m)
	if o.onDeliver != nil {
		o.onDeliver(m)
	}
}

func (o *testOut) drain() []effect {
	e := o.effects
	o.effects = nil
	return e
}

// messages returns the delivered application messages.
func (o *testOut) messages() []evs.Message { return o.delivered }

// harness drives a set of engines over a synchronous lossless "network":
// every multicast reaches every other member before the next token hop,
// unless the drop hook discards it.
type harness struct {
	t       *testing.T
	ring    evs.Configuration
	engines map[evs.ProcID]*Engine
	outs    map[evs.ProcID]*testOut
	token   *wire.Token
	holder  evs.ProcID
	// drop, when set, discards the multicast from -> to when it returns true.
	drop func(from, to evs.ProcID, d *wire.Data) bool
	// dupData and dupToken, when set, deliver every data frame / token
	// twice, as a faulty network would.
	dupData  bool
	dupToken bool
	// undelivered multicasts pending per receiver (normally flushed
	// immediately; kept for tests that interleave manually).
	lastEffects map[evs.ProcID][]effect
}

func ringOf(ids ...evs.ProcID) evs.Configuration {
	return evs.NewConfiguration(evs.ViewID{Rep: ids[0], Seq: 1}, ids)
}

// newHarness builds engines with the given config template (Self and Ring
// are filled per participant).
func newHarness(t *testing.T, ring evs.Configuration, mk func(self evs.ProcID) Config) *harness {
	t.Helper()
	h := &harness{
		t:           t,
		ring:        ring,
		engines:     make(map[evs.ProcID]*Engine),
		outs:        make(map[evs.ProcID]*testOut),
		holder:      ring.Members[0],
		token:       NewInitialToken(ring.ID, 0),
		lastEffects: make(map[evs.ProcID][]effect),
	}
	for _, id := range ring.Members {
		out := &testOut{}
		eng, err := New(mk(id), out)
		if err != nil {
			t.Fatalf("engine %d: %v", id, err)
		}
		h.engines[id] = eng
		h.outs[id] = out
	}
	return h
}

// hop lets the current holder process the token, distributes its
// multicasts to all other members, and advances the holder. It returns the
// effects the holder produced.
func (h *harness) hop() []effect {
	h.t.Helper()
	holder := h.holder
	eng := h.engines[holder]
	raw := h.token.AppendTo(nil)
	eng.HandleToken(h.token)
	if h.dupToken {
		cp, err := wire.DecodeToken(raw)
		if err != nil {
			h.t.Fatalf("token re-decode: %v", err)
		}
		eng.HandleToken(cp)
	}
	effects := h.outs[holder].drain()
	h.lastEffects[holder] = effects
	var next *wire.Token
	for _, ef := range effects {
		switch {
		case ef.token != nil:
			next = ef.token
		case ef.data != nil:
			for _, id := range h.ring.Members {
				if id == holder {
					continue
				}
				if h.drop != nil && h.drop(holder, id, ef.data) {
					continue
				}
				// Fresh decode per receiver, as from the wire.
				copies := 1
				if h.dupData {
					copies = 2
				}
				for c := 0; c < copies; c++ {
					cp, err := wire.DecodeData(ef.data.AppendTo(nil))
					if err != nil {
						h.t.Fatalf("re-decode: %v", err)
					}
					h.engines[id].HandleData(cp)
				}
			}
		}
	}
	if next == nil {
		h.t.Fatalf("participant %d did not send the token", holder)
	}
	h.token = next
	h.holder = h.ring.Successor(holder)
	return effects
}

// round performs one full rotation.
func (h *harness) round() {
	for range h.ring.Members {
		h.hop()
	}
}

// submit queues payloads at the given member.
func (h *harness) submit(id evs.ProcID, service evs.Service, payloads ...string) {
	h.t.Helper()
	for _, p := range payloads {
		if err := h.engines[id].Submit([]byte(p), service); err != nil {
			h.t.Fatalf("submit at %d: %v", id, err)
		}
	}
}

// assertTotalOrder verifies all members delivered identical message
// sequences (prefix-compatible if lengths differ is NOT accepted here; use
// assertPrefixOrder for in-flight checks).
func (h *harness) assertTotalOrder() {
	h.t.Helper()
	var ref []evs.Message
	var refID evs.ProcID
	for _, id := range h.ring.Members {
		ms := h.outs[id].messages()
		if ref == nil {
			ref, refID = ms, id
			continue
		}
		if len(ms) != len(ref) {
			h.t.Fatalf("member %d delivered %d messages, member %d delivered %d",
				id, len(ms), refID, len(ref))
		}
		for i := range ms {
			if ms[i].Seq != ref[i].Seq || ms[i].Sender != ref[i].Sender ||
				string(ms[i].Payload) != string(ref[i].Payload) {
				h.t.Fatalf("delivery %d differs: member %d got (seq=%d from %d %q), member %d got (seq=%d from %d %q)",
					i, id, ms[i].Seq, ms[i].Sender, ms[i].Payload,
					refID, ref[i].Seq, ref[i].Sender, ref[i].Payload)
			}
		}
	}
}

// dataSends splits the holder's effects into sends before and after the
// token, excluding retransmissions.
func splitSends(effects []effect) (pre, post []*wire.Data) {
	seenToken := false
	for _, ef := range effects {
		switch {
		case ef.token != nil:
			seenToken = true
		case ef.data != nil && !ef.data.Retrans():
			if seenToken {
				post = append(post, ef.data)
			} else {
				pre = append(pre, ef.data)
			}
		}
	}
	return pre, post
}
