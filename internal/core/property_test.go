package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"accelring/internal/evs"
	"accelring/internal/flowcontrol"
	"accelring/internal/wire"
)

// TestQuickProtocolInvariants property-tests the ordering protocol end to
// end: random ring sizes, random window parameters (including the original
// protocol at Accelerated=0), random service mixes, and random message
// loss. After the system quiesces it checks:
//
//  1. total order — every member delivered exactly seq 1..N in order;
//  2. safe stability — at the instant a member delivered a Safe message,
//     every other member had already received it;
//  3. self delivery — every sender delivered its own messages;
//  4. flow control — no token ever carried fcc above the Global window.
func TestQuickProtocolInvariants(t *testing.T) {
	f := func(seed int64) bool { return runProtocolTrial(t, seed) }
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func runProtocolTrial(t *testing.T, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(5) // 2..6 members
	ids := make([]evs.ProcID, n)
	for i := range ids {
		ids[i] = evs.ProcID(10 + i*7) // non-contiguous IDs
	}
	ring := evs.NewConfiguration(evs.ViewID{Rep: ids[0], Seq: uint64(rng.Intn(100) + 1)}, ids)

	personal := 1 + rng.Intn(8)
	accel := rng.Intn(personal + 1)
	global := personal + rng.Intn(personal*4*n)
	lossPct := rng.Intn(30) // 0..29 % per receiver

	h := newHarness(t, ring, func(self evs.ProcID) Config {
		c := Config{
			Self:            self,
			Ring:            ring,
			Windows:         flowcontrol.Windows{Personal: personal, Global: global, Accelerated: accel},
			DelayedRequests: accel > 0,
			Priority:        PriorityAggressive,
		}
		if rng.Intn(2) == 0 {
			c.Priority = PriorityConservative
		}
		return c
	})

	lossRng := rand.New(rand.NewSource(seed ^ 0x5eed))
	healed := false
	h.drop = func(from, to evs.ProcID, d *wire.Data) bool {
		if healed {
			return false
		}
		return lossRng.Intn(100) < lossPct
	}

	// Safe-stability observer.
	violation := ""
	for _, id := range ring.Members {
		id := id
		h.outs[id].onDeliver = func(m evs.Message) {
			if m.Service != evs.Safe {
				return
			}
			for _, other := range ring.Members {
				if !h.engines[other].bufHas(m.Seq) {
					violation = fmt.Sprintf("member %d delivered safe seq %d before member %d received it",
						id, m.Seq, other)
				}
			}
		}
	}

	// Random workload, injected over the first rounds.
	services := []evs.Service{evs.Agreed, evs.Safe, evs.FIFO, evs.Reliable, evs.Causal}
	total := 0
	inject := func() {
		for _, id := range ring.Members {
			for k := rng.Intn(4); k > 0; k-- {
				svc := services[rng.Intn(len(services))]
				h.submit(id, svc, fmt.Sprintf("m-%d-%d", id, total))
				total++
			}
		}
	}
	for r := 0; r < 6; r++ {
		inject()
		h.round()
		// The Global window caps new sends; retransmissions are exempt
		// (they always go out), so fcc may exceed the window only under
		// loss.
		if lossPct == 0 && int(h.token.Fcc) > global {
			t.Logf("seed %d: fcc %d exceeded global window %d without loss",
				seed, h.token.Fcc, global)
			return false
		}
	}
	// Drain with loss still active, then heal and finish.
	for r := 0; r < 60 && !quiesced(h, total); r++ {
		h.round()
	}
	healed = true
	for r := 0; r < 120 && !quiesced(h, total); r++ {
		h.round()
	}
	if violation != "" {
		t.Logf("seed %d: %s", seed, violation)
		return false
	}
	if !quiesced(h, total) {
		t.Logf("seed %d: did not quiesce (n=%d pw=%d aw=%d gw=%d loss=%d%%, want %d msgs; got %v)",
			seed, n, personal, accel, global, lossPct, total, deliveredCounts(h))
		return false
	}
	// Total order: everyone delivered seq 1..total in order.
	for _, id := range ring.Members {
		ms := h.outs[id].messages()
		if len(ms) != total {
			t.Logf("seed %d: member %d delivered %d of %d", seed, id, len(ms), total)
			return false
		}
		for i, m := range ms {
			if m.Seq != uint64(i+1) {
				t.Logf("seed %d: member %d delivery %d has seq %d", seed, id, i, m.Seq)
				return false
			}
		}
	}
	h.assertTotalOrder()
	// Self delivery.
	for _, id := range ring.Members {
		sent := h.engines[id].Counters().Sent
		var own uint64
		for _, m := range h.outs[id].messages() {
			if m.Sender == id {
				own++
			}
		}
		if own != sent {
			t.Logf("seed %d: member %d delivered %d of its own %d messages", seed, id, own, sent)
			return false
		}
	}
	return true
}

func quiesced(h *harness, total int) bool {
	for _, id := range h.ring.Members {
		if h.engines[id].QueueLen() != 0 {
			return false
		}
		if len(h.outs[id].messages()) != total {
			return false
		}
	}
	return true
}

func deliveredCounts(h *harness) map[evs.ProcID]int {
	m := make(map[evs.ProcID]int)
	for _, id := range h.ring.Members {
		m[id] = len(h.outs[id].messages())
	}
	return m
}

// bufHas exposes receipt checks to the stability observer.
func (e *Engine) bufHas(seq uint64) bool { return e.buf.Has(seq) }
