package core

import (
	"testing"

	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/wire"
)

// obsRig attaches a message tracer (sampling every seq) and a flight
// recorder to every engine of a harness.
type obsRig struct {
	tracers map[evs.ProcID]*obs.MsgTracer
	flights map[evs.ProcID]*obs.FlightRecorder
}

func newObsHarness(t *testing.T, ring evs.Configuration) (*harness, *obsRig) {
	t.Helper()
	rig := &obsRig{
		tracers: make(map[evs.ProcID]*obs.MsgTracer),
		flights: make(map[evs.ProcID]*obs.FlightRecorder),
	}
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		cfg := Accelerated(self, ring, 5, 100, 3)
		rig.tracers[self] = obs.NewMsgTracer(1, 256)
		rig.flights[self] = obs.NewFlightRecorder(256)
		cfg.Observer = &obs.RingObserver{Msg: rig.tracers[self], Flight: rig.flights[self]}
		return cfg
	})
	return h, rig
}

func stagesFor(tr *obs.MsgTracer, seq uint64) map[obs.MsgStage]int {
	out := make(map[obs.MsgStage]int)
	for _, ev := range tr.ForSeq(seq) {
		out[ev.Stage]++
	}
	return out
}

// TestEngineMsgLifecycle drives a clean 3-node round and checks the full
// span: the origin records submit -> sent -> deliver, every other member
// records recv -> deliver, for the same (deterministically sampled) seq.
func TestEngineMsgLifecycle(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h, rig := newObsHarness(t, ring)
	h.submit(1, evs.Agreed, "m1", "m2", "m3")
	h.round()
	h.round()
	h.assertTotalOrder()

	for seq := uint64(1); seq <= 3; seq++ {
		origin := stagesFor(rig.tracers[1], seq)
		if origin[obs.StageSubmit] != 1 {
			t.Errorf("seq %d at origin: submit recorded %d times, want 1", seq, origin[obs.StageSubmit])
		}
		if origin[obs.StageSentPre]+origin[obs.StageSentPost] != 1 {
			t.Errorf("seq %d at origin: sent stages = %v, want exactly one send", seq, origin)
		}
		if origin[obs.StageDeliver] != 1 {
			t.Errorf("seq %d at origin: deliver recorded %d times, want 1", seq, origin[obs.StageDeliver])
		}
		for _, id := range []evs.ProcID{2, 3} {
			got := stagesFor(rig.tracers[id], seq)
			if got[obs.StageRecv] != 1 || got[obs.StageDeliver] != 1 {
				t.Errorf("seq %d at member %d: stages = %v, want one recv and one deliver", seq, id, got)
			}
			if got[obs.StageSubmit] != 0 {
				t.Errorf("seq %d at member %d: submit recorded away from origin", seq, id)
			}
		}
	}

	// Every engine's black box saw the token and the delivery batch.
	for _, id := range ring.Members {
		var rx, tx, deliver bool
		for _, ev := range rig.flights[id].Snapshot() {
			switch ev.Kind {
			case obs.FlightTokenRx:
				rx = true
			case obs.FlightTokenTx:
				tx = true
			case obs.FlightDeliver:
				deliver = true
			}
		}
		if !rx || !tx || !deliver {
			t.Errorf("member %d flight recorder: token_rx=%v token_tx=%v deliver=%v, want all",
				id, rx, tx, deliver)
		}
	}
}

// TestEngineRetransmissionTracing drops the multicast toward one member
// and checks the repair shows up as spans: the victim records the rtr
// request and a recv via retransmission; some member records answering it.
func TestEngineRetransmissionTracing(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h, rig := newObsHarness(t, ring)
	dropped := false
	h.drop = func(from, to evs.ProcID, d *wire.Data) bool {
		if from == 1 && to == 2 && !dropped {
			dropped = true
			return true
		}
		return false
	}
	h.submit(1, evs.Agreed, "x")
	for i := 0; i < 9; i++ {
		h.hop()
	}
	h.assertTotalOrder()
	if !dropped {
		t.Fatal("drop hook never fired")
	}

	victim := stagesFor(rig.tracers[2], 1)
	if victim[obs.StageRtrRequest] == 0 {
		t.Errorf("victim recorded no rtr_request: %v", victim)
	}
	if victim[obs.StageRecvDup] == 0 {
		t.Errorf("victim's first copy should arrive flagged as a retransmission: %v", victim)
	}
	answered := 0
	for _, id := range ring.Members {
		answered += stagesFor(rig.tracers[id], 1)[obs.StageRetransmit]
	}
	if answered == 0 {
		t.Error("no member recorded answering the retransmission")
	}

	var sawReq, sawAns bool
	for _, id := range ring.Members {
		for _, ev := range rig.flights[id].Snapshot() {
			switch ev.Kind {
			case obs.FlightRetransReq:
				sawReq = true
				if ev.Seq != 1 || ev.Count < 1 {
					t.Errorf("rtr_req event = %+v", ev)
				}
			case obs.FlightRetransAns:
				sawAns = true
			}
		}
	}
	if !sawReq || !sawAns {
		t.Errorf("flight recorders: rtr_req=%v rtr_ans=%v, want both", sawReq, sawAns)
	}
}

// TestFlightEventImmuneToScratchReuse pins the aliasing regression from
// the zero-allocation decode path: Token.DecodeFrom reuses the Rtr
// backing array, so a recorded event that kept any reference into the
// token would change when the next frame is decoded over the same
// scratch. Flight events are scalar-only; re-decoding must not touch
// what was recorded.
func TestFlightEventImmuneToScratchReuse(t *testing.T) {
	ring := ringOf(1, 2)
	fr := obs.NewFlightRecorder(16)
	cfg := Accelerated(1, ring, 5, 100, 3)
	cfg.Observer = &obs.RingObserver{Flight: fr}
	eng, err := New(cfg, &testOut{})
	if err != nil {
		t.Fatal(err)
	}

	// A token carrying retransmission requests, decoded into a scratch
	// Token exactly as a transport receive loop would.
	tok := NewInitialToken(ring.ID, 10)
	tok.TokenSeq, tok.Seq, tok.Aru, tok.Fcc = 7, 10, 10, 3
	tok.Rtr = []uint64{4, 5, 6}
	frame := tok.AppendTo(nil)

	var scratch wire.Token
	if err := scratch.DecodeFrom(frame); err != nil {
		t.Fatal(err)
	}
	eng.HandleToken(&scratch)

	var rx *obs.FlightEvent
	for _, ev := range fr.Snapshot() {
		if ev.Kind == obs.FlightTokenRx {
			cp := ev
			rx = &cp
		}
	}
	if rx == nil {
		t.Fatal("no token_rx event recorded")
	}

	// Overwrite the scratch with a very different token — the hot path
	// reuses the same Token (and Rtr backing) for the next frame.
	other := NewInitialToken(ring.ID, 999)
	other.TokenSeq, other.Seq, other.Aru, other.Fcc = 99, 999, 998, 50
	other.Rtr = []uint64{1111, 2222, 3333}
	if err := scratch.DecodeFrom(other.AppendTo(nil)); err != nil {
		t.Fatal(err)
	}
	for i := range scratch.Rtr {
		scratch.Rtr[i] = 0xDEAD // and scribble over the shared backing
	}

	for _, ev := range fr.Snapshot() {
		if ev.Kind == obs.FlightTokenRx {
			if ev.Seq != rx.Seq || ev.Aru != rx.Aru || ev.Fcc != rx.Fcc || ev.Count != rx.Count {
				t.Fatalf("recorded event mutated by scratch reuse: %+v, want %+v", ev, *rx)
			}
			if ev.Seq != 10 || ev.Fcc != 3 || ev.Count != 3 {
				t.Fatalf("recorded event has wrong values: %+v", ev)
			}
		}
	}
}
