package core

import (
	"fmt"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/wire"
)

func TestConfigValidation(t *testing.T) {
	ring := ringOf(1, 2, 3)
	valid := Accelerated(1, ring, 5, 100, 3)
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero self", func(c *Config) { c.Self = 0 }},
		{"not a member", func(c *Config) { c.Self = 99 }},
		{"bad windows", func(c *Config) { c.Windows.Personal = 0 }},
		{"bad priority", func(c *Config) { c.Priority = 42 }},
		{"rtr cap too large", func(c *Config) { c.MaxRtrPerRound = wire.MaxRtr + 1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			tc.mutate(&cfg)
			if _, err := New(cfg, &testOut{}); err == nil {
				t.Fatal("New accepted invalid config")
			}
		})
	}
	if _, err := New(valid, nil); err == nil {
		t.Fatal("New accepted nil output")
	}
	if _, err := New(valid, &testOut{}); err != nil {
		t.Fatalf("New rejected valid config: %v", err)
	}
}

// TestFig1Accelerated reproduces the execution of paper Figure 1b:
// three participants, Personal window 5, Accelerated window 3, each with
// five messages queued. Each participant must send two messages, then the
// token, then three messages, and the token seq must read 5, 10, 15, 20.
func TestFig1Accelerated(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.submit(1, evs.Agreed, "a1", "a2", "a3", "a4", "a5")
	h.submit(2, evs.Agreed, "b1", "b2", "b3", "b4", "b5")
	h.submit(3, evs.Agreed, "c1", "c2", "c3", "c4", "c5")
	// Participant 1 will send 16..20 on its second token.
	wantSeqs := []uint64{5, 10, 15}
	for i := 0; i < 3; i++ {
		effects := h.hop()
		pre, post := splitSends(effects)
		if len(pre) != 2 || len(post) != 3 {
			t.Fatalf("hop %d: pre=%d post=%d, want 2/3", i, len(pre), len(post))
		}
		if h.token.Seq != wantSeqs[i] {
			t.Fatalf("hop %d: token seq = %d, want %d", i, h.token.Seq, wantSeqs[i])
		}
		// Post-token messages carry the flag; pre-token ones do not.
		for _, d := range pre {
			if d.PostToken() {
				t.Fatalf("pre-token message %d flagged post-token", d.Seq)
			}
		}
		for _, d := range post {
			if !d.PostToken() {
				t.Fatalf("post-token message %d not flagged", d.Seq)
			}
		}
	}
	h.submit(1, evs.Agreed, "a6", "a7", "a8", "a9", "a10")
	h.hop()
	if h.token.Seq != 20 {
		t.Fatalf("round 2 token seq = %d, want 20", h.token.Seq)
	}
	// Sequence numbers are assigned contiguously: 1-5 by A, 6-10 by B, etc.
	msgs := h.outs[2].messages()
	for i, m := range msgs {
		if m.Seq != uint64(i+1) {
			t.Fatalf("delivery %d has seq %d", i, m.Seq)
		}
	}
}

// TestFig1Original reproduces Figure 1a: all five messages precede the
// token.
func TestFig1Original(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Original(self, ring, 5, 100)
	})
	h.submit(1, evs.Agreed, "a1", "a2", "a3", "a4", "a5")
	effects := h.hop()
	pre, post := splitSends(effects)
	if len(pre) != 5 || len(post) != 0 {
		t.Fatalf("pre=%d post=%d, want 5/0", len(pre), len(post))
	}
	if h.token.Seq != 5 {
		t.Fatalf("token seq = %d, want 5", h.token.Seq)
	}
}

// TestFewerThanAcceleratedAllPost checks the paper's rule that a
// participant with fewer than Accelerated-window messages sends all of
// them after the token.
func TestFewerThanAcceleratedAllPost(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.submit(1, evs.Agreed, "x", "y")
	pre, post := splitSends(h.hop())
	if len(pre) != 0 || len(post) != 2 {
		t.Fatalf("pre=%d post=%d, want 0/2", len(pre), len(post))
	}
}

func TestAgreedTotalOrderNoLoss(t *testing.T) {
	for _, variant := range []string{"original", "accelerated"} {
		t.Run(variant, func(t *testing.T) {
			ring := ringOf(1, 2, 3, 4, 5)
			h := newHarness(t, ring, func(self evs.ProcID) Config {
				if variant == "original" {
					return Original(self, ring, 4, 100)
				}
				return Accelerated(self, ring, 4, 100, 2)
			})
			total := 0
			for i := 0; i < 10; i++ {
				for _, id := range ring.Members {
					h.submit(id, evs.Agreed, fmt.Sprintf("m-%d-%d", id, i))
					total++
				}
			}
			for r := 0; r < 20; r++ {
				h.round()
			}
			h.assertTotalOrder()
			got := len(h.outs[1].messages())
			if got != total {
				t.Fatalf("delivered %d messages, want %d", got, total)
			}
		})
	}
}

func TestSafeDeliveryStability(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.submit(1, evs.Safe, "safe-1")
	h.hop() // participant 1 sends seq 1 (safe)
	// Immediately after the send, nobody may deliver: stability unknown.
	for _, id := range ring.Members {
		if n := len(h.outs[id].messages()); n != 0 {
			t.Fatalf("member %d delivered %d safe messages in round 1", id, n)
		}
	}
	// Within a bounded number of rounds everyone delivers.
	for r := 0; r < 4; r++ {
		h.round()
	}
	for _, id := range ring.Members {
		ms := h.outs[id].messages()
		if len(ms) != 1 || string(ms[0].Payload) != "safe-1" {
			t.Fatalf("member %d delivered %v", id, ms)
		}
	}
	h.assertTotalOrder()
}

// TestSafeBlocksLaterAgreed: an undeliverable safe message must delay
// later agreed messages — delivery is in strict total order.
func TestSafeBlocksLaterAgreed(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 0)
	})
	h.submit(1, evs.Safe, "safe")
	h.submit(2, evs.Agreed, "agreed")
	h.hop() // 1 sends safe seq 1
	h.hop() // 2 sends agreed seq 2; seq 1 not yet stable at 2
	// Participant 3 received both but must not deliver the agreed message
	// before the safe one.
	ms := h.outs[3].messages()
	if len(ms) != 0 {
		t.Fatalf("member 3 delivered %d messages before stability", len(ms))
	}
	for r := 0; r < 4; r++ {
		h.round()
	}
	h.assertTotalOrder()
	ms = h.outs[3].messages()
	if len(ms) != 2 || string(ms[0].Payload) != "safe" || string(ms[1].Payload) != "agreed" {
		t.Fatalf("member 3 delivered %v", ms)
	}
}

func TestMixedServicesOrdered(t *testing.T) {
	ring := ringOf(1, 2, 3, 4)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 3, 50, 2)
	})
	services := []evs.Service{evs.Reliable, evs.FIFO, evs.Causal, evs.Agreed, evs.Safe}
	n := 0
	for i, svc := range services {
		for _, id := range ring.Members {
			h.submit(id, svc, fmt.Sprintf("%v-%d-%d", svc, id, i))
			n++
		}
	}
	for r := 0; r < 12; r++ {
		h.round()
	}
	h.assertTotalOrder()
	if got := len(h.outs[1].messages()); got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
}

// TestRetransmissionOriginalImmediate: in the original protocol a gap is
// requested on the very next token after it is noticed.
func TestRetransmissionOriginalImmediate(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Original(self, ring, 5, 100)
	})
	// Drop participant 1's messages to participant 2 once.
	dropped := false
	h.drop = func(from, to evs.ProcID, d *wire.Data) bool {
		if from == 1 && to == 2 && !dropped && d.Seq == 2 {
			dropped = true
			return true
		}
		return false
	}
	h.submit(1, evs.Agreed, "m1", "m2", "m3")
	h.hop() // 1 sends 1..3; 2 misses seq 2
	h.hop() // 2 must request seq 2 on this token immediately
	if len(h.token.Rtr) != 1 || h.token.Rtr[0] != 2 {
		t.Fatalf("token rtr = %v, want [2]", h.token.Rtr)
	}
	h.hop() // 3 has seq 2 and retransmits it
	for r := 0; r < 3; r++ {
		h.round()
	}
	h.assertTotalOrder()
	if got := len(h.outs[2].messages()); got != 3 {
		t.Fatalf("member 2 delivered %d, want 3", got)
	}
}

// TestRetransmissionAcceleratedDelayed: the accelerated protocol requests
// a missing message only one round after noticing it (§III-A), because the
// token may reflect messages still in flight.
func TestRetransmissionAcceleratedDelayed(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	dropped := false
	h.drop = func(from, to evs.ProcID, d *wire.Data) bool {
		if from == 1 && to == 2 && !dropped && d.Seq == 2 {
			dropped = true
			return true
		}
		return false
	}
	h.submit(1, evs.Agreed, "m1", "m2", "m3")
	h.hop() // 1 sends 1..3 (token seq 3); 2 misses seq 2
	h.hop() // 2 sees the gap but must NOT request yet (horizon = prev seq 0)
	if len(h.token.Rtr) != 0 {
		t.Fatalf("round-1 token rtr = %v, want empty (one-round delay)", h.token.Rtr)
	}
	h.hop() // 3 passes token back to 1
	h.hop() // 1 handles; nothing to answer
	h.hop() // 2's second token: now the gap is within last round's horizon
	if len(h.token.Rtr) != 1 || h.token.Rtr[0] != 2 {
		t.Fatalf("round-2 token rtr = %v, want [2]", h.token.Rtr)
	}
	for r := 0; r < 3; r++ {
		h.round()
	}
	h.assertTotalOrder()
	if got := len(h.outs[2].messages()); got != 3 {
		t.Fatalf("member 2 delivered %d, want 3", got)
	}
	// The retransmission was answered exactly once, by a holder of seq 2.
	var retrans uint64
	for _, id := range ring.Members {
		retrans += h.engines[id].Counters().Retransmitted
	}
	if retrans != 1 {
		t.Fatalf("retransmissions = %d, want 1", retrans)
	}
}

// TestRetransmissionsSentPreToken: answers to rtr requests must all be
// multicast before the token is passed (§III-B1).
func TestRetransmissionsSentPreToken(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 5) // fully accelerated
	})
	h.drop = func(from, to evs.ProcID, d *wire.Data) bool {
		return from == 1 && to == 2 && d.Seq == 1 && !d.Retrans()
	}
	h.submit(1, evs.Agreed, "m1")
	for i := 0; i < 4; i++ {
		h.hop()
	}
	// Participant 2 requests seq 1 on its second token; participant 3
	// holds it and must answer pre-token even though it is fully
	// accelerated.
	h.submit(3, evs.Agreed, "n1", "n2")
	effects := h.hop() // holder 2: requests
	if len(h.token.Rtr) != 1 {
		t.Fatalf("rtr = %v, want one request", h.token.Rtr)
	}
	effects = h.hop() // holder 3: answers + sends its own messages post-token
	seenToken := false
	var retransAfterToken, retransBefore int
	for _, ef := range effects {
		switch {
		case ef.token != nil:
			seenToken = true
		case ef.data != nil && ef.data.Retrans():
			if seenToken {
				retransAfterToken++
			} else {
				retransBefore++
			}
		}
	}
	if retransBefore != 1 || retransAfterToken != 0 {
		t.Fatalf("retransmissions before/after token = %d/%d, want 1/0", retransBefore, retransAfterToken)
	}
}

func TestGlobalWindowLimitsSending(t *testing.T) {
	ring := ringOf(1, 2)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		c := Accelerated(self, ring, 10, 12, 5)
		return c
	})
	for i := 0; i < 40; i++ {
		h.submit(1, evs.Agreed, "x")
		h.submit(2, evs.Agreed, "y")
	}
	h.hop() // 1 sends 10 (personal window)
	if h.token.Fcc != 10 {
		t.Fatalf("fcc = %d, want 10", h.token.Fcc)
	}
	h.hop() // 2 may send only 2 (global 12 - fcc 10)
	if h.token.Fcc != 12 {
		t.Fatalf("fcc = %d, want 12", h.token.Fcc)
	}
	if h.token.Seq != 12 {
		t.Fatalf("seq = %d, want 12", h.token.Seq)
	}
	// Steady state: each sends what the other releases.
	for i := 0; i < 20; i++ {
		h.hop()
		if int(h.token.Fcc) > 12 {
			t.Fatalf("fcc %d exceeded global window", h.token.Fcc)
		}
	}
}

func TestDuplicateTokenDropped(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.hop()
	// Replay the token that participant 1 already consumed, as a token
	// retransmission would.
	eng := h.engines[1]
	before := eng.Counters()
	stale := *h.token
	stale.TokenSeq = 1 // the initial token seq participant 1 consumed
	eng.HandleToken(&stale)
	after := eng.Counters()
	if after.Rounds != before.Rounds || after.TokensDropped != before.TokensDropped+1 {
		t.Fatalf("stale token not dropped: %+v -> %+v", before, after)
	}
}

func TestForeignRingTrafficDropped(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	eng := h.engines[1]
	foreign := evs.ViewID{Rep: 9, Seq: 9}
	eng.HandleData(&wire.Data{RingID: foreign, Seq: 1, Sender: 9, Service: evs.Agreed})
	eng.HandleToken(&wire.Token{RingID: foreign, TokenSeq: 99})
	c := eng.Counters()
	if c.DataDropped != 1 || c.TokensDropped != 1 || c.Rounds != 0 {
		t.Fatalf("foreign traffic not dropped: %+v", c)
	}
}

func TestSubmitValidation(t *testing.T) {
	ring := ringOf(1, 2)
	eng, err := New(Accelerated(1, ring, 5, 100, 3), &testOut{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(make([]byte, wire.MaxPayload+1), evs.Agreed); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := eng.Submit([]byte("x"), evs.Service(0)); err == nil {
		t.Fatal("invalid service accepted")
	}
	if err := eng.Submit([]byte("x"), evs.Safe); err != nil {
		t.Fatalf("valid submit rejected: %v", err)
	}
	if eng.QueueLen() != 1 {
		t.Fatalf("queue len = %d", eng.QueueLen())
	}
}

// TestAruLoweringAndRaising exercises the three aru rules of §III-B2
// directly against token state.
func TestAruLoweringAndRaising(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	// Participant 2 misses everything from participant 1.
	blocked := true
	h.drop = func(from, to evs.ProcID, d *wire.Data) bool {
		return blocked && from == 1 && to == 2 && !d.Retrans()
	}
	h.submit(1, evs.Agreed, "m1", "m2")
	h.hop() // 1 sends 1,2; aru rises to 2 at the sender (case 3)
	if h.token.Aru != 2 || h.token.AruID != 0 {
		t.Fatalf("after hop 1: aru=%d aruID=%d, want 2,0", h.token.Aru, h.token.AruID)
	}
	h.hop() // 2 missed both; lowers aru to 0 and owns it
	if h.token.Aru != 0 || h.token.AruID != 2 {
		t.Fatalf("after hop 2: aru=%d aruID=%d, want 0,2", h.token.Aru, h.token.AruID)
	}
	h.hop() // 3 has everything but must not raise: not the owner
	if h.token.Aru != 0 || h.token.AruID != 2 {
		t.Fatalf("after hop 3: aru=%d aruID=%d, want 0,2", h.token.Aru, h.token.AruID)
	}
	blocked = false
	h.hop() // 1: not the owner either
	if h.token.Aru != 0 {
		t.Fatalf("after hop 4: aru=%d, want 0", h.token.Aru)
	}
	h.hop() // 2 requests 1,2 (accelerated: horizon now covers them)
	h.hop() // 3 answers; 2 receives
	h.hop() // 1
	h.hop() // 2 now has everything: owner raises aru to seq and releases it
	if h.token.Aru != 2 || h.token.AruID != 0 {
		t.Fatalf("after recovery: aru=%d aruID=%d, want 2,0", h.token.Aru, h.token.AruID)
	}
}

// TestDiscardAfterStability: once messages are stable everywhere, buffers
// drain to zero.
func TestDiscardAfterStability(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	for i := 0; i < 5; i++ {
		h.submit(1, evs.Agreed, "x")
		h.submit(2, evs.Safe, "y")
	}
	for r := 0; r < 8; r++ {
		h.round()
	}
	for _, id := range ring.Members {
		eng := h.engines[id]
		if eng.Buffered(1) != nil {
			t.Fatalf("member %d still buffers seq 1 after stability", id)
		}
		if eng.SafeLine() < eng.High() {
			t.Fatalf("member %d safe line %d below high %d after drain", id, eng.SafeLine(), eng.High())
		}
	}
}

// TestPriorityMethodAggressive: any next-round message from the
// predecessor raises the token's priority.
func TestPriorityMethodAggressive(t *testing.T) {
	ring := ringOf(1, 2, 3)
	cfg := Accelerated(2, ring, 5, 100, 3)
	eng, err := New(cfg, &testOut{})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1 token.
	tok := NewInitialToken(ring.ID, 0)
	eng.HandleToken(tok)
	if !eng.DataPriority() {
		t.Fatal("data must have priority after token handling")
	}
	// A message from a non-predecessor never raises token priority.
	eng.HandleData(&wire.Data{RingID: ring.ID, Seq: 50, Sender: 3, Round: 2, Service: evs.Agreed})
	if !eng.DataPriority() {
		t.Fatal("non-predecessor message raised token priority")
	}
	// A current-round message from the predecessor does not either.
	eng.HandleData(&wire.Data{RingID: ring.ID, Seq: 51, Sender: 1, Round: 1, Service: evs.Agreed})
	if !eng.DataPriority() {
		t.Fatal("current-round message raised token priority")
	}
	// A next-round message from the predecessor does, even pre-token.
	eng.HandleData(&wire.Data{RingID: ring.ID, Seq: 52, Sender: 1, Round: 2, Service: evs.Agreed})
	if eng.DataPriority() {
		t.Fatal("next-round predecessor message did not raise token priority")
	}
}

// TestPriorityMethodConservative: only a post-token next-round message
// from the predecessor raises the token's priority.
func TestPriorityMethodConservative(t *testing.T) {
	ring := ringOf(1, 2, 3)
	cfg := Accelerated(2, ring, 5, 100, 3)
	cfg.Priority = PriorityConservative
	eng, err := New(cfg, &testOut{})
	if err != nil {
		t.Fatal(err)
	}
	eng.HandleToken(NewInitialToken(ring.ID, 0))
	// Pre-token next-round message: not enough for method 2.
	eng.HandleData(&wire.Data{RingID: ring.ID, Seq: 52, Sender: 1, Round: 2, Service: evs.Agreed})
	if eng.DataPriority() == false {
		t.Fatal("pre-token message raised priority under conservative method")
	}
	// Post-token next-round message raises it.
	eng.HandleData(&wire.Data{RingID: ring.ID, Seq: 53, Sender: 1, Round: 2,
		Service: evs.Agreed, Flags: wire.FlagPostToken})
	if eng.DataPriority() {
		t.Fatal("post-token message did not raise token priority")
	}
}

// TestPriorityRepresentativeRound: the representative's predecessor is the
// last ring member, whose same-round messages signal the next token.
func TestPriorityRepresentativeRound(t *testing.T) {
	ring := ringOf(1, 2, 3)
	eng, err := New(Accelerated(1, ring, 5, 100, 3), &testOut{})
	if err != nil {
		t.Fatal(err)
	}
	eng.HandleToken(NewInitialToken(ring.ID, 0))
	// Member 3 (predecessor of the representative) sending in round 1
	// signals that the representative's round-2 token is coming.
	eng.HandleData(&wire.Data{RingID: ring.ID, Seq: 10, Sender: 3, Round: 1, Service: evs.Agreed})
	if eng.DataPriority() {
		t.Fatal("predecessor round-1 message did not raise priority at the representative")
	}
}

func TestSingleMemberRing(t *testing.T) {
	ring := ringOf(7)
	out := &testOut{}
	eng, err := New(Accelerated(7, ring, 5, 100, 3), out)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit([]byte("solo"), evs.Safe); err != nil {
		t.Fatal(err)
	}
	tok := NewInitialToken(ring.ID, 0)
	for i := 0; i < 3; i++ {
		eng.HandleToken(tok)
		var next *wire.Token
		for _, ef := range out.drain() {
			if ef.token != nil {
				next = ef.token
			}
		}
		if next == nil {
			t.Fatal("no token sent")
		}
		tok = next
	}
	ms := out.messages()
	if len(ms) != 1 || string(ms[0].Payload) != "solo" {
		t.Fatalf("delivered %v", ms)
	}
}

// TestCausalityAcrossSenders: a reply submitted after delivery of the
// original message must be ordered after it everywhere.
func TestCausalityAcrossSenders(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.submit(1, evs.Agreed, "question")
	h.hop()
	// Member 2 has delivered "question"; its reply is causally after.
	if len(h.outs[2].messages()) != 1 {
		t.Fatal("member 2 did not deliver the question")
	}
	h.submit(2, evs.Agreed, "answer")
	for r := 0; r < 3; r++ {
		h.round()
	}
	h.assertTotalOrder()
	ms := h.outs[3].messages()
	if len(ms) != 2 || string(ms[0].Payload) != "question" || string(ms[1].Payload) != "answer" {
		t.Fatalf("causal order violated: %v", ms)
	}
}

func TestCountersAccounting(t *testing.T) {
	ring := ringOf(1, 2)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.submit(1, evs.Agreed, "a", "b", "c")
	for r := 0; r < 3; r++ {
		h.round()
	}
	c1 := h.engines[1].Counters()
	if c1.Sent != 3 {
		t.Fatalf("sent = %d, want 3", c1.Sent)
	}
	if c1.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3", c1.Rounds)
	}
	if c1.Delivered != 3 {
		t.Fatalf("delivered = %d, want 3", c1.Delivered)
	}
}

func TestTokenSeqWraparound(t *testing.T) {
	ring := ringOf(1, 2)
	eng, err := New(Accelerated(1, ring, 5, 100, 3), &testOut{})
	if err != nil {
		t.Fatal(err)
	}
	tok := NewInitialToken(ring.ID, 0)
	tok.TokenSeq = ^uint32(0) - 1 // about to wrap
	eng.HandleToken(tok)
	if eng.Counters().Rounds != 1 {
		t.Fatal("token near wraparound rejected")
	}
	// The next token wraps past zero and must still be accepted.
	tok2 := NewInitialToken(ring.ID, 0)
	tok2.TokenSeq = 1 // wrapped
	eng.HandleToken(tok2)
	if eng.Counters().Rounds != 2 {
		t.Fatal("wrapped token seq rejected")
	}
}
