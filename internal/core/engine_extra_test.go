package core

import (
	"fmt"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/wire"
)

func TestSubmitControlFlagsAndDelivery(t *testing.T) {
	ring := ringOf(1, 2)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	if err := h.engines[1].SubmitControl([]byte{0xCC}); err != nil {
		t.Fatal(err)
	}
	h.submit(1, evs.Agreed, "app")
	h.round()
	h.round()
	for _, id := range ring.Members {
		ms := h.outs[id].messages()
		if len(ms) != 2 {
			t.Fatalf("member %d delivered %d", id, len(ms))
		}
		if !ms[0].Control || ms[1].Control {
			t.Fatalf("control flags wrong: %+v", ms)
		}
	}
	// Oversized control payloads are rejected.
	if err := h.engines[1].SubmitControl(make([]byte, wire.MaxPayload+1)); err == nil {
		t.Fatal("oversized control payload accepted")
	}
}

func TestTakePending(t *testing.T) {
	ring := ringOf(1, 2)
	eng, err := New(Accelerated(1, ring, 5, 100, 3), &testOut{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit([]byte("a"), evs.Agreed); err != nil {
		t.Fatal(err)
	}
	if err := eng.SubmitControl([]byte("c")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit([]byte("b"), evs.Safe); err != nil {
		t.Fatal(err)
	}
	got := eng.TakePending()
	if len(got) != 3 {
		t.Fatalf("pending = %d", len(got))
	}
	if string(got[0].Payload) != "a" || got[0].Service != evs.Agreed || got[0].Control {
		t.Fatalf("pending[0] = %+v", got[0])
	}
	if !got[1].Control {
		t.Fatalf("pending[1] not control: %+v", got[1])
	}
	if string(got[2].Payload) != "b" || got[2].Service != evs.Safe {
		t.Fatalf("pending[2] = %+v", got[2])
	}
	if eng.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
	if len(eng.TakePending()) != 0 {
		t.Fatal("second TakePending not empty")
	}
}

// TestRetransmissionPreservesControlFlag: retransmitted control messages
// must stay control messages, or membership recovery traffic would leak to
// applications after a retransmission.
func TestRetransmissionPreservesControlFlag(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Original(self, ring, 5, 100) // immediate requests: quick test
	})
	h.drop = func(from, to evs.ProcID, d *wire.Data) bool {
		return from == 1 && to == 2 && !d.Retrans()
	}
	if err := h.engines[1].SubmitControl([]byte{0x01}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		h.round()
	}
	ms := h.outs[2].messages()
	if len(ms) != 1 {
		t.Fatalf("member 2 delivered %d", len(ms))
	}
	if !ms[0].Control {
		t.Fatal("retransmitted message lost its control flag")
	}
}

func TestRangeBufferedAndBufferedAccessors(t *testing.T) {
	ring := ringOf(1, 2)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		// Window large enough that nothing stabilizes/discards during the
		// single hop below.
		c := Accelerated(self, ring, 5, 100, 3)
		return c
	})
	h.submit(1, evs.Agreed, "x", "y", "z")
	h.hop()
	eng := h.engines[2]
	if eng.Buffered(1) == nil || eng.Buffered(99) != nil {
		t.Fatal("Buffered lookup wrong")
	}
	var seqs []uint64
	eng.RangeBuffered(1, 10, func(d *wire.Data) bool {
		seqs = append(seqs, d.Seq)
		return true
	})
	if fmt.Sprint(seqs) != "[1 2 3]" {
		t.Fatalf("RangeBuffered = %v", seqs)
	}
}

// TestRtrRespectsMaxPerRound: a node missing a large range requests at
// most MaxRtrPerRound sequence numbers per token.
func TestRtrRespectsMaxPerRound(t *testing.T) {
	ring := ringOf(1, 2)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		c := Original(self, ring, 40, 400)
		c.MaxRtrPerRound = 8
		return c
	})
	// Drop everything from 1 to 2 once (40 messages).
	lost := true
	h.drop = func(from, to evs.ProcID, d *wire.Data) bool {
		return lost && from == 1 && to == 2 && !d.Retrans()
	}
	for i := 0; i < 40; i++ {
		h.submit(1, evs.Agreed, "m")
	}
	h.hop() // 1 sends 40
	lost = false
	h.hop() // 2 requests: capped at 8
	if len(h.token.Rtr) != 8 {
		t.Fatalf("rtr = %d entries, want 8", len(h.token.Rtr))
	}
	// Recovery completes over subsequent rounds regardless.
	for r := 0; r < 8; r++ {
		h.round()
	}
	h.assertTotalOrder()
	if got := len(h.outs[2].messages()); got != 40 {
		t.Fatalf("member 2 delivered %d, want 40", got)
	}
}

// TestReliableServiceDeliversWithoutStability: Reliable/FIFO/Causal levels
// share Agreed's delivery timing.
func TestReliableServiceDeliversWithoutStability(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.submit(1, evs.Reliable, "r")
	h.submit(1, evs.FIFO, "f")
	h.submit(1, evs.Causal, "c")
	h.hop() // messages reach 2 and 3 immediately
	for _, id := range []evs.ProcID{2, 3} {
		if got := len(h.outs[id].messages()); got != 3 {
			t.Fatalf("member %d delivered %d before any stability", id, got)
		}
	}
}

// TestPerSenderFIFO: one sender's messages are always delivered in
// submission order (a consequence of total order + in-order sequencing).
func TestPerSenderFIFO(t *testing.T) {
	ring := ringOf(1, 2, 3, 4)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 3, 50, 2)
	})
	const n = 30
	for i := 0; i < n; i++ {
		h.submit(2, evs.FIFO, fmt.Sprintf("%04d", i))
	}
	for r := 0; r < 15; r++ {
		h.round()
	}
	for _, id := range ring.Members {
		var prev string
		count := 0
		for _, m := range h.outs[id].messages() {
			if m.Sender != 2 {
				continue
			}
			if string(m.Payload) <= prev {
				t.Fatalf("member %d: FIFO violated: %q after %q", id, m.Payload, prev)
			}
			prev = string(m.Payload)
			count++
		}
		if count != n {
			t.Fatalf("member %d got %d of %d", id, count, n)
		}
	}
}

// TestTokenRetransmitIdempotent: replaying the last sent token (as the
// loss-recovery timer does) at every member never disturbs ordering.
func TestTokenRetransmitIdempotent(t *testing.T) {
	ring := ringOf(1, 2, 3)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.submit(1, evs.Agreed, "a")
	h.submit(2, evs.Safe, "b")
	for r := 0; r < 3; r++ {
		h.round()
		// Replay every engine's last token at its successor.
		for _, id := range ring.Members {
			if tok := h.engines[id].LastToken(); tok != nil {
				cp := *tok
				h.engines[ring.Successor(id)].HandleToken(&cp)
			}
		}
	}
	h.round()
	h.assertTotalOrder()
	if got := len(h.outs[1].messages()); got != 2 {
		t.Fatalf("delivered %d, want 2", got)
	}
}

// TestEngineAccessorsSteadyState sanity-checks the exported observers.
func TestEngineAccessorsSteadyState(t *testing.T) {
	ring := ringOf(1, 2)
	h := newHarness(t, ring, func(self evs.ProcID) Config {
		return Accelerated(self, ring, 5, 100, 3)
	})
	h.submit(1, evs.Agreed, "x")
	for r := 0; r < 4; r++ {
		h.round()
	}
	eng := h.engines[1]
	if eng.Self() != 1 || !eng.Ring().Equal(ring) {
		t.Fatal("identity accessors wrong")
	}
	if eng.Aru() != eng.High() || eng.Delivered() != eng.High() {
		t.Fatalf("steady state: aru=%d high=%d delivered=%d", eng.Aru(), eng.High(), eng.Delivered())
	}
	if eng.SafeLine() != eng.High() {
		t.Fatalf("safe line %d != high %d at quiescence", eng.SafeLine(), eng.High())
	}
}
