package membership

import (
	"fmt"
	"testing"
	"time"

	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/flowcontrol"
	"accelring/internal/wire"
)

// memHarness wires machines together over a synchronous in-memory network
// with a manual clock, making every membership scenario deterministic.
type memHarness struct {
	t        *testing.T
	now      time.Time
	machines map[evs.ProcID]*Machine
	outs     map[evs.ProcID]*memOut
	queue    []envelope
	// drop, when set, discards matching frames.
	drop func(from, to evs.ProcID, token bool, frame []byte) bool
	// dead machines receive nothing and send nothing.
	dead map[evs.ProcID]bool
}

type envelope struct {
	from, to evs.ProcID
	token    bool
	frame    []byte
}

type memOut struct {
	h      *memHarness
	id     evs.ProcID
	events []evs.Event
}

func (o *memOut) Multicast(frame []byte) {
	if o.h.dead[o.id] {
		return
	}
	cp := append([]byte(nil), frame...)
	for id := range o.h.machines {
		if id != o.id {
			o.h.queue = append(o.h.queue, envelope{from: o.id, to: id, frame: cp})
		}
	}
}

func (o *memOut) Unicast(to evs.ProcID, frame []byte) {
	if o.h.dead[o.id] {
		return
	}
	cp := append([]byte(nil), frame...)
	o.h.queue = append(o.h.queue, envelope{from: o.id, to: to, token: true, frame: cp})
}

func (o *memOut) Deliver(ev evs.Event) { o.events = append(o.events, ev) }

func (o *memOut) messages() []evs.Message {
	var ms []evs.Message
	for _, ev := range o.events {
		if m, ok := ev.(evs.Message); ok {
			ms = append(ms, m)
		}
	}
	return ms
}

func (o *memOut) configs() []evs.ConfigChange {
	var cs []evs.ConfigChange
	for _, ev := range o.events {
		if c, ok := ev.(evs.ConfigChange); ok {
			cs = append(cs, c)
		}
	}
	return cs
}

func testTimeouts() Timeouts {
	return Timeouts{
		JoinInterval:    10 * time.Millisecond,
		Gather:          50 * time.Millisecond,
		Commit:          100 * time.Millisecond,
		TokenLoss:       200 * time.Millisecond,
		TokenRetransmit: 60 * time.Millisecond,
	}
}

func newMemHarness(t *testing.T, ids ...evs.ProcID) *memHarness {
	t.Helper()
	h := &memHarness{
		t:        t,
		now:      time.Unix(1000, 0),
		machines: make(map[evs.ProcID]*Machine),
		outs:     make(map[evs.ProcID]*memOut),
		dead:     make(map[evs.ProcID]bool),
	}
	for _, id := range ids {
		h.add(id)
	}
	return h
}

func (h *memHarness) add(id evs.ProcID) {
	out := &memOut{h: h, id: id}
	m, err := New(Config{
		Self:            id,
		Windows:         flowcontrol.Windows{Personal: 5, Global: 100, Accelerated: 3},
		Priority:        core.PriorityAggressive,
		DelayedRequests: true,
		Timeouts:        testTimeouts(),
	}, out, h.now)
	if err != nil {
		h.t.Fatalf("machine %d: %v", id, err)
	}
	h.machines[id] = m
	h.outs[id] = out
}

// pump dispatches queued frames. An operational ring never quiesces (the
// token circulates forever), so each call processes a bounded batch.
func (h *memHarness) pump() {
	for processed := 0; len(h.queue) > 0 && processed < 5000; processed++ {
		env := h.queue[0]
		h.queue = h.queue[1:]
		m := h.machines[env.to]
		if m == nil || h.dead[env.to] {
			continue
		}
		if h.drop != nil && h.drop(env.from, env.to, env.token, env.frame) {
			continue
		}
		if env.token {
			m.HandleTokenFrame(env.frame, h.now)
		} else {
			m.HandleDataFrame(env.frame, h.now)
		}
	}
}

// advance moves the clock forward in small steps, ticking and pumping.
func (h *memHarness) advance(d time.Duration) {
	step := 5 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < d; elapsed += step {
		h.now = h.now.Add(step)
		for id, m := range h.machines {
			if !h.dead[id] {
				m.Tick(h.now)
			}
		}
		h.pump()
	}
}

// waitOperational advances time until every live machine is operational.
func (h *memHarness) waitOperational(within time.Duration) {
	h.t.Helper()
	deadline := h.now.Add(within)
	for h.now.Before(deadline) {
		all := true
		for id, m := range h.machines {
			if h.dead[id] {
				continue
			}
			if m.State() != StateOperational {
				all = false
			}
		}
		if all {
			return
		}
		h.advance(10 * time.Millisecond)
	}
	for id, m := range h.machines {
		if !h.dead[id] {
			h.t.Logf("machine %d state %v ring %v", id, m.State(), m.Ring())
		}
	}
	h.t.Fatal("machines did not become operational")
}

func (h *memHarness) ringOf(id evs.ProcID) evs.Configuration { return h.machines[id].Ring() }

// waitReform advances time until every live machine is operational on a
// ring NEWER than old.
func (h *memHarness) waitReform(old evs.ViewID, within time.Duration) {
	h.t.Helper()
	deadline := h.now.Add(within)
	for h.now.Before(deadline) {
		all := true
		for id, m := range h.machines {
			if h.dead[id] {
				continue
			}
			if m.State() != StateOperational || !old.Less(m.Ring().ID) {
				all = false
			}
		}
		if all {
			return
		}
		h.advance(10 * time.Millisecond)
	}
	for id, m := range h.machines {
		if !h.dead[id] {
			h.t.Logf("machine %d state %v ring %v", id, m.State(), m.Ring())
		}
	}
	h.t.Fatal("ring did not reform")
}

func TestFormInitialRing(t *testing.T) {
	h := newMemHarness(t, 1, 2, 3)
	h.waitOperational(2 * time.Second)
	ring := h.ringOf(1)
	if len(ring.Members) != 3 {
		t.Fatalf("ring = %v", ring)
	}
	for _, id := range []evs.ProcID{2, 3} {
		if !h.ringOf(id).Equal(ring) {
			t.Fatalf("machine %d ring %v != %v", id, h.ringOf(id), ring)
		}
	}
	// Fresh start: exactly one regular config change, no transitional.
	for id, out := range h.outs {
		cs := out.configs()
		if len(cs) != 1 || cs[0].Transitional {
			t.Fatalf("machine %d configs = %+v", id, cs)
		}
		if !cs[0].Config.Equal(ring) {
			t.Fatalf("machine %d config %v != ring %v", id, cs[0].Config, ring)
		}
	}
}

func TestOrderingAfterFormation(t *testing.T) {
	h := newMemHarness(t, 1, 2, 3)
	h.waitOperational(2 * time.Second)
	for id, m := range h.machines {
		for i := 0; i < 4; i++ {
			if err := m.Submit([]byte(fmt.Sprintf("m-%d-%d", id, i)), evs.Agreed); err != nil {
				t.Fatal(err)
			}
		}
	}
	h.advance(300 * time.Millisecond)
	ref := h.outs[1].messages()
	if len(ref) != 12 {
		t.Fatalf("delivered %d messages, want 12", len(ref))
	}
	for _, id := range []evs.ProcID{2, 3} {
		ms := h.outs[id].messages()
		if len(ms) != len(ref) {
			t.Fatalf("machine %d delivered %d, want %d", id, len(ms), len(ref))
		}
		for i := range ms {
			if ms[i].Seq != ref[i].Seq || string(ms[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("total order violated at %d", i)
			}
		}
	}
}

func TestSingletonRing(t *testing.T) {
	h := newMemHarness(t, 7)
	h.waitOperational(2 * time.Second)
	ring := h.ringOf(7)
	if len(ring.Members) != 1 || ring.Members[0] != 7 {
		t.Fatalf("ring = %v", ring)
	}
	if err := h.machines[7].Submit([]byte("solo"), evs.Safe); err != nil {
		t.Fatal(err)
	}
	h.advance(200 * time.Millisecond)
	ms := h.outs[7].messages()
	if len(ms) != 1 || string(ms[0].Payload) != "solo" {
		t.Fatalf("messages = %v", ms)
	}
}

func TestSubmitBeforeRing(t *testing.T) {
	h := newMemHarness(t, 1)
	if err := h.machines[1].Submit([]byte("x"), evs.Agreed); err != ErrNotOperational {
		t.Fatalf("Submit before ring = %v, want ErrNotOperational", err)
	}
}

func TestCrashReformsRing(t *testing.T) {
	h := newMemHarness(t, 1, 2, 3)
	h.waitOperational(2 * time.Second)
	firstRing := h.ringOf(1)
	// Kill 3; the token stops circulating, 1 and 2 reform.
	h.dead[3] = true
	h.waitReform(firstRing.ID, 5*time.Second)
	ring := h.ringOf(1)
	if len(ring.Members) != 2 || !h.ringOf(2).Equal(ring) {
		t.Fatalf("reformed ring = %v / %v", ring, h.ringOf(2))
	}
	if !firstRing.ID.Less(ring.ID) {
		t.Fatalf("new ring id %v not above old %v", ring.ID, firstRing.ID)
	}
	// Survivors saw: regular(3) ... transitional(2 members) regular(2).
	for _, id := range []evs.ProcID{1, 2} {
		cs := h.outs[id].configs()
		if len(cs) != 3 {
			t.Fatalf("machine %d configs = %+v", id, cs)
		}
		if cs[0].Transitional || !cs[1].Transitional || cs[2].Transitional {
			t.Fatalf("machine %d config pattern wrong: %+v", id, cs)
		}
		if len(cs[1].Config.Members) != 2 || len(cs[2].Config.Members) != 2 {
			t.Fatalf("machine %d post-crash memberships: %+v", id, cs)
		}
	}
	// The reformed ring still orders messages.
	h.machines[1].Submit([]byte("after"), evs.Agreed)
	h.advance(200 * time.Millisecond)
	for _, id := range []evs.ProcID{1, 2} {
		ms := h.outs[id].messages()
		if len(ms) == 0 || string(ms[len(ms)-1].Payload) != "after" {
			t.Fatalf("machine %d did not deliver post-reform message", id)
		}
	}
}

// TestRecoveryDeliversMissedMessage: a message one member lost on the old
// ring must reach it through recovery flooding when membership changes
// before normal retransmission recovers it.
func TestRecoveryDeliversMissedMessage(t *testing.T) {
	h := newMemHarness(t, 1, 2, 3)
	h.waitOperational(2 * time.Second)
	// Drop all data frames to 3 (so it misses the message and the
	// retransmissions), then trigger a membership change via a joiner.
	h.drop = func(from, to evs.ProcID, token bool, frame []byte) bool {
		if to != 3 || token {
			return false
		}
		ft, _ := wire.PeekType(frame)
		return ft == wire.FrameData
	}
	h.machines[1].Submit([]byte("missed"), evs.Agreed)
	h.advance(50 * time.Millisecond)
	if n := len(h.outs[3].messages()); n != 0 {
		t.Fatalf("member 3 delivered %d messages despite drops", n)
	}
	if len(h.outs[1].messages()) != 1 {
		t.Fatal("member 1 did not deliver its own message")
	}
	// Heal the network and add a joiner: membership reruns and recovery
	// floods the missed message to 3.
	h.drop = nil
	h.add(4)
	h.waitOperational(5 * time.Second)
	if got := len(h.ringOf(1).Members); got != 4 {
		t.Fatalf("merged ring has %d members", got)
	}
	ms := h.outs[3].messages()
	if len(ms) != 1 || string(ms[0].Payload) != "missed" {
		t.Fatalf("member 3 recovered %v", ms)
	}
	// Members 1 and 2 must NOT deliver it twice.
	for _, id := range []evs.ProcID{1, 2} {
		if n := len(h.outs[id].messages()); n != 1 {
			t.Fatalf("member %d delivered %d copies", id, n)
		}
	}
	// The new member saw only the regular config (it has no old ring).
	cs := h.outs[4].configs()
	if len(cs) != 1 || cs[0].Transitional {
		t.Fatalf("joiner configs = %+v", cs)
	}
}

func TestMergeTwoRings(t *testing.T) {
	h := newMemHarness(t, 1, 2)
	// Partition: 1 and 2 cannot hear each other; each forms a singleton.
	h.drop = func(from, to evs.ProcID, token bool, frame []byte) bool {
		return from != to
	}
	h.waitOperational(3 * time.Second)
	if len(h.ringOf(1).Members) != 1 || len(h.ringOf(2).Members) != 1 {
		t.Fatalf("expected singletons, got %v / %v", h.ringOf(1), h.ringOf(2))
	}
	h.machines[1].Submit([]byte("one"), evs.Agreed)
	h.machines[2].Submit([]byte("two"), evs.Agreed)
	h.advance(100 * time.Millisecond)
	// Heal: presence beacons cross, both sides re-gather and merge.
	pre := h.ringOf(1).ID
	if h.ringOf(2).ID.Less(pre) {
		pre = h.ringOf(2).ID
	}
	h.drop = nil
	h.waitReform(pre, 5*time.Second)
	ring := h.ringOf(1)
	if len(ring.Members) != 2 || !h.ringOf(2).Equal(ring) {
		t.Fatalf("merged ring = %v / %v", ring, h.ringOf(2))
	}
	// Each side delivered its own pre-merge message exactly once and saw
	// a transitional config of itself before the merged regular config.
	for id, want := range map[evs.ProcID]string{1: "one", 2: "two"} {
		ms := h.outs[id].messages()
		if len(ms) != 1 || string(ms[0].Payload) != want {
			t.Fatalf("machine %d messages = %v", id, ms)
		}
		cs := h.outs[id].configs()
		last := cs[len(cs)-1]
		if last.Transitional || len(last.Config.Members) != 2 {
			t.Fatalf("machine %d final config = %+v", id, last)
		}
		prev := cs[len(cs)-2]
		if !prev.Transitional || len(prev.Config.Members) != 1 {
			t.Fatalf("machine %d transitional config = %+v", id, prev)
		}
	}
}

func TestTokenRetransmissionHealsDrop(t *testing.T) {
	h := newMemHarness(t, 1, 2, 3)
	h.waitOperational(2 * time.Second)
	installsBefore := h.machines[1].Counters().Installs
	// Drop exactly one regular token frame.
	dropped := false
	h.drop = func(from, to evs.ProcID, token bool, frame []byte) bool {
		if !token || dropped {
			return false
		}
		ft, _ := wire.PeekType(frame)
		if ft != wire.FrameToken {
			return false
		}
		dropped = true
		return true
	}
	// One retransmit interval later the token reappears; the ring must
	// survive without reforming.
	h.advance(150 * time.Millisecond)
	h.drop = nil
	h.machines[2].Submit([]byte("alive"), evs.Agreed)
	h.advance(200 * time.Millisecond)
	if !dropped {
		t.Fatal("no token was dropped; test is vacuous")
	}
	var retrans uint64
	for _, m := range h.machines {
		retrans += m.Counters().TokenRetransmits
		if m.Counters().Installs != installsBefore {
			t.Fatalf("ring reformed after a single token drop (installs %d -> %d)",
				installsBefore, m.Counters().Installs)
		}
	}
	if retrans == 0 {
		t.Fatal("token drop healed without retransmission?")
	}
	for _, id := range []evs.ProcID{1, 2, 3} {
		ms := h.outs[id].messages()
		if len(ms) == 0 || string(ms[len(ms)-1].Payload) != "alive" {
			t.Fatalf("machine %d did not deliver after token retransmission", id)
		}
	}
}

func TestSafeMessagesAcrossMembershipChange(t *testing.T) {
	h := newMemHarness(t, 1, 2, 3)
	h.waitOperational(2 * time.Second)
	// Submit safe messages, then immediately kill member 3 before they
	// can stabilize everywhere.
	h.machines[1].Submit([]byte("s1"), evs.Safe)
	h.machines[2].Submit([]byte("s2"), evs.Safe)
	first := h.ringOf(1).ID
	h.dead[3] = true
	h.waitReform(first, 5*time.Second)
	h.advance(200 * time.Millisecond)
	// Survivors must agree on the delivered sequence (possibly within the
	// transitional configuration).
	m1, m2 := h.outs[1].messages(), h.outs[2].messages()
	if len(m1) != len(m2) {
		t.Fatalf("survivors delivered %d vs %d", len(m1), len(m2))
	}
	for i := range m1 {
		if string(m1[i].Payload) != string(m2[i].Payload) {
			t.Fatalf("survivor order differs at %d: %q vs %q", i, m1[i].Payload, m2[i].Payload)
		}
	}
	if len(m1) != 2 {
		t.Fatalf("expected both safe messages delivered by survivors, got %d", len(m1))
	}
}

func TestMachineValidation(t *testing.T) {
	now := time.Unix(0, 0)
	out := &memOut{}
	if _, err := New(Config{}, out, now); err == nil {
		t.Fatal("zero Self accepted")
	}
	if _, err := New(Config{Self: 1}, out, now); err == nil {
		t.Fatal("invalid windows accepted")
	}
	cfg := Config{Self: 1, Windows: flowcontrol.Windows{Personal: 5, Global: 50}}
	if _, err := New(cfg, nil, now); err == nil {
		t.Fatal("nil output accepted")
	}
	cfg.Timeouts = Timeouts{JoinInterval: -1}
	if _, err := New(cfg, out, now); err == nil {
		t.Fatal("negative timeout accepted")
	}
}
