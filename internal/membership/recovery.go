package membership

import (
	"math"
	"time"

	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/obs"
	"accelring/internal/wire"
)

// Recovery control payload kinds (first payload byte of control messages).
const (
	recFlood byte = 1 // rest of payload: wire-encoded old-ring data frame
	recDone  byte = 2 // sender finished flooding
)

// recovery tracks the EVS recovery of one membership change: survivors of
// the same previous ring re-multicast every unstable old-ring message on
// the new ring (as totally ordered control messages), then deliver the
// old ring's tail, the transitional configuration, and finally the new
// regular configuration, in the order Extended Virtual Synchrony requires.
type recovery struct {
	// oldEng/oldRing are the dissolved ring (nil/zero for a fresh start).
	oldEng  *core.Engine
	oldRing evs.Configuration
	// oldDelivered is where application delivery stopped on the old ring.
	oldDelivered uint64
	// survivors are old-ring members continuing into the new ring.
	survivors idSet
	// low is the minimum old-ring aru among survivors: everything at or
	// below it is known received by every survivor.
	low uint64
	// high is the maximum old-ring sequence any survivor holds.
	high uint64
	// recBuf holds flooded old-ring messages this participant lacked.
	recBuf map[uint64]*wire.Data
	// doneFrom tracks which new-ring members finished flooding.
	doneFrom map[evs.ProcID]bool
	// members is the new ring's membership (all must send done).
	members idSet
	// holdback defers new-ring application deliveries until recovery
	// completes, preserving EVS delivery order.
	holdback []evs.Event
}

// engineOut adapts the ordering engine's effects to the machine. Frames
// are encoded into the machine's reusable scratch buffer; the machine
// Output contract requires transports to copy or transmit before
// returning, so the scratch is free again by the time the next effect
// fires.
type engineOut struct{ m *Machine }

func (o engineOut) Multicast(d *wire.Data) {
	o.m.encBuf = d.AppendTo(o.m.encBuf[:0])
	o.m.out.Multicast(o.m.encBuf)
}

func (o engineOut) SendToken(t *wire.Token) {
	o.m.encBuf = t.AppendTo(o.m.encBuf[:0])
	o.m.out.Unicast(o.m.ring.Successor(o.m.cfg.Self), o.m.encBuf)
}

func (o engineOut) Deliver(msg evs.Message) { o.m.onEngineDeliver(msg) }

// install replaces the engine with one for the committed ring and begins
// recovery.
func (m *Machine) install(c *wire.Commit, now time.Time) {
	rec := &recovery{
		members:  newIDSet(c.NewRing.Members...),
		doneFrom: make(map[evs.ProcID]bool),
		recBuf:   make(map[uint64]*wire.Data),
	}
	// The EVS old ring advances only when a recovery COMPLETES. If the
	// previous recovery was cut short by another membership change, the
	// application never installed that ring: its configuration was never
	// delivered, so the ring still owed recovery is the one the aborted
	// attempt was recovering — not the aborted intermediate ring, whose
	// engine carries no application history. Dropping the unfinished
	// recovery here would silently lose old-ring messages this member
	// received (some possibly already safe-delivered by old-ring peers
	// that partitioned away), violating safe delivery and virtual
	// synchrony.
	oldEng, oldRing := m.eng, m.ring
	var oldDelivered uint64
	if m.eng != nil {
		oldDelivered = m.eng.Delivered()
	}
	if m.rec != nil {
		oldEng, oldRing, oldDelivered = m.rec.oldEng, m.rec.oldRing, m.rec.oldDelivered
		for seq, d := range m.rec.recBuf {
			rec.recBuf[seq] = d
		}
	}
	var pending []core.PendingSubmission
	if m.eng != nil {
		pending = m.eng.TakePending()
	}
	if oldEng != nil && !oldRing.ID.IsZero() {
		rec.oldEng = oldEng
		rec.oldRing = oldRing
		rec.oldDelivered = oldDelivered
		low := uint64(math.MaxUint64)
		var high uint64
		for i := range c.Info {
			in := &c.Info[i]
			if in.OldRing != oldRing.ID {
				continue
			}
			rec.survivors = rec.survivors.with(in.PID)
			if in.Aru < low {
				low = in.Aru
			}
			if in.HighSeq > high {
				high = in.HighSeq
			}
		}
		rec.low, rec.high = low, high
	}
	m.rec = rec

	eng, err := core.New(core.Config{
		Self:            m.cfg.Self,
		Ring:            c.NewRing,
		Windows:         m.cfg.Windows,
		Priority:        m.cfg.Priority,
		DelayedRequests: m.cfg.DelayedRequests,
		Observer:        m.cfg.Observer,
	}, engineOut{m})
	if err != nil {
		// The committed ring came from our own gather logic; a config
		// error here is a programming bug, not a runtime condition.
		panic("membership: install: " + err.Error())
	}
	m.eng = eng
	m.prevRingID = m.ring.ID
	m.ring = c.NewRing
	m.installedRing = c.NewRing.ID
	m.ringStarted = false
	m.setState(StateRecover, now)
	m.lastTokenAt = now
	m.lastRetransAt = time.Time{}
	m.counters.Installs++
	m.obsReg().Counter(m.metricName("membership.installs")).Inc()
	if fr := m.flight(); fr != nil {
		fr.Record(obs.FlightEvent{
			Kind: obs.FlightState, Ring: m.ringLabel(), At: now, Note: "install",
			Seq: c.NewRing.ID.Seq, Count: len(c.NewRing.Members),
		})
	}

	// Flood every unstable old-ring message we hold, then the done
	// marker, then any application messages that never got sequence
	// numbers on the old ring. Submission order is per-sender FIFO in the
	// new ring's total order, so a member's done marker proves its flood
	// has been delivered.
	if rec.oldEng != nil {
		flood := func(d *wire.Data) {
			buf := make([]byte, 0, 1+d.EncodedLen())
			buf = append(buf, recFlood)
			// Engine enforces wire.MaxPayload on submissions; recovery
			// frames of accepted messages always fit.
			_ = m.eng.SubmitControl(d.AppendTo(buf))
		}
		rec.oldEng.RangeBuffered(rec.low+1, rec.high, func(d *wire.Data) bool {
			flood(d)
			return true
		})
		// Messages flooded to us during an aborted recovery attempt are
		// part of our old-ring holdings too; the new ring's members may
		// lack them.
		for seq, d := range rec.recBuf {
			if seq > rec.low && seq <= rec.high && rec.oldEng.Buffered(seq) == nil {
				flood(d)
			}
		}
	}
	_ = m.eng.SubmitControl([]byte{recDone})
	for _, p := range pending {
		if p.Control {
			continue // stale recovery traffic from an aborted change
		}
		_ = m.eng.Submit(p.Payload, p.Service)
	}
}

// onEngineDeliver filters the engine's delivery stream: recovery control
// messages are consumed, application messages are held back during
// recovery and passed through afterwards.
func (m *Machine) onEngineDeliver(msg evs.Message) {
	if msg.Control {
		m.handleRecoveryControl(msg)
		return
	}
	if m.state == StateRecover && m.rec != nil {
		m.rec.holdback = append(m.rec.holdback, msg)
		return
	}
	m.out.Deliver(msg)
}

func (m *Machine) handleRecoveryControl(msg evs.Message) {
	rec := m.rec
	if rec == nil || len(msg.Payload) == 0 {
		return
	}
	switch msg.Payload[0] {
	case recFlood:
		if rec.oldEng == nil {
			return
		}
		inner, err := wire.DecodeData(msg.Payload[1:])
		if err != nil {
			return
		}
		if inner.RingID != rec.oldRing.ID ||
			inner.Seq <= rec.oldDelivered || inner.Seq > rec.high {
			return
		}
		if rec.oldEng.Buffered(inner.Seq) == nil {
			if _, dup := rec.recBuf[inner.Seq]; !dup {
				rec.recBuf[inner.Seq] = inner
			}
		}
	case recDone:
		rec.doneFrom[msg.Sender] = true
		if len(rec.doneFrom) == len(rec.members) {
			m.finalizeRecovery()
		}
	}
}

// finalizeRecovery delivers the EVS tail of the old configuration: the
// messages every survivor is known to have (through the old-ring delivery
// point `low`), then the transitional configuration, then the remaining
// recovered messages, then the new regular configuration, then the
// held-back new-ring traffic.
func (m *Machine) finalizeRecovery() {
	rec := m.rec
	m.rec = nil
	if rec.oldEng != nil {
		emit := func(seq uint64) {
			d := rec.oldEng.Buffered(seq)
			if d == nil {
				d = rec.recBuf[seq]
			}
			if d == nil || d.Control() {
				// A hole: no survivor holds this message (its sender
				// departed before anyone received it), or internal
				// traffic of the old ring.
				return
			}
			m.out.Deliver(evs.Message{
				Seq:     d.Seq,
				Sender:  d.Sender,
				Round:   d.Round,
				Service: d.Service,
				Config:  rec.oldRing.ID,
				Payload: d.Payload,
			})
		}
		// The pre-transitional part may only contain messages whose full
		// guarantees held on the old ring. For a Safe message that means
		// the old engine's stability line — proof that EVERY old-ring
		// member received it — not merely `low`, which is agreement among
		// the survivors present here. An unstable Safe message blocks
		// everything behind it (delivery is strictly in sequence order),
		// so the regular part stops at the first one and the rest of the
		// tail is delivered after the transitional configuration, which
		// is exactly the cut-down guarantee the transitional signals.
		stable := rec.oldEng.SafeLine()
		seq := rec.oldDelivered + 1
		for ; seq <= rec.low && seq <= rec.high; seq++ {
			d := rec.oldEng.Buffered(seq)
			if d == nil {
				d = rec.recBuf[seq]
			}
			if d != nil && d.Service.NeedsStability() && seq > stable {
				break
			}
			emit(seq)
		}
		transitional := evs.Configuration{
			ID:      evs.ViewID{Rep: rec.survivors.min(), Seq: m.ring.ID.Seq},
			Members: rec.survivors,
		}
		m.out.Deliver(evs.ConfigChange{Config: transitional, Transitional: true})
		for ; seq <= rec.high; seq++ {
			emit(seq)
		}
	}
	m.out.Deliver(evs.ConfigChange{Config: m.ring})
	for _, ev := range rec.holdback {
		m.out.Deliver(ev)
	}
	m.setState(StateOperational, m.lastNow)
}
