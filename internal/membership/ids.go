package membership

import (
	"sort"

	"accelring/internal/evs"
)

// idSet is a sorted, duplicate-free set of participant IDs. The zero value
// is the empty set. Operations return new sets; idSet values are treated
// as immutable once built.
type idSet []evs.ProcID

func newIDSet(ids ...evs.ProcID) idSet {
	s := append(idSet(nil), ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var last evs.ProcID
	for _, p := range s {
		if p != last {
			out = append(out, p)
			last = p
		}
	}
	return out
}

func (s idSet) contains(p evs.ProcID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return i < len(s) && s[i] == p
}

func (s idSet) with(p evs.ProcID) idSet {
	if s.contains(p) {
		return s
	}
	return newIDSet(append(append(idSet(nil), s...), p)...)
}

func (s idSet) union(o idSet) idSet {
	if len(o) == 0 {
		return s
	}
	return newIDSet(append(append(idSet(nil), s...), o...)...)
}

func (s idSet) minus(o idSet) idSet {
	out := make(idSet, 0, len(s))
	for _, p := range s {
		if !o.contains(p) {
			out = append(out, p)
		}
	}
	return out
}

func (s idSet) equal(o idSet) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// min returns the smallest member, or 0 for the empty set.
func (s idSet) min() evs.ProcID {
	if len(s) == 0 {
		return 0
	}
	return s[0]
}
