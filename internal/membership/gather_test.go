package membership

import (
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/wire"
)

// TestGatherDeclaresNonConvergentFailed: a participant whose join sets
// never converge with ours (here: a ghost that always claims to be alone)
// is declared failed after the gather window, and the ring forms without
// it.
func TestGatherDeclaresNonConvergentFailed(t *testing.T) {
	h := newMemHarness(t, 1, 2)
	// The ghost (id 9) is not a real machine: we inject its joins by hand
	// so it can never converge.
	ghostJoin := func() []byte {
		j := wire.Join{Sender: 9, Alive: []evs.ProcID{9}, Attempt: 1}
		return j.AppendTo(nil)
	}
	// Feed ghost joins to both machines every tick while they gather.
	stop := h.now.Add(2 * time.Second)
	for h.now.Before(stop) {
		for _, id := range []evs.ProcID{1, 2} {
			if h.machines[id].State() == StateGather {
				h.machines[id].HandleDataFrame(ghostJoin(), h.now)
			}
		}
		h.advance(10 * time.Millisecond)
		if h.machines[1].State() == StateOperational &&
			h.machines[2].State() == StateOperational {
			break
		}
	}
	ring := h.machines[1].Ring()
	if h.machines[1].State() != StateOperational || len(ring.Members) != 2 {
		t.Fatalf("ring did not form around the ghost: state=%v ring=%v",
			h.machines[1].State(), ring)
	}
	if ring.Contains(9) {
		t.Fatalf("non-convergent ghost joined the ring: %v", ring)
	}
	// The machines recorded the failure.
	if !newIDSet(h.machines[1].failed...).contains(9) {
		t.Fatalf("ghost not declared failed: %v", h.machines[1].failed)
	}
}

// TestStaleCommitIgnored: a commit token for an older configuration must
// not disturb an installed newer ring.
func TestStaleCommitIgnored(t *testing.T) {
	h := newMemHarness(t, 1, 2)
	h.waitOperational(3 * time.Second)
	m := h.machines[1]
	ring := m.Ring()
	installs := m.Counters().Installs

	stale := &wire.Commit{
		NewRing:  evs.NewConfiguration(evs.ViewID{Rep: 1, Seq: ring.ID.Seq - 0}, []evs.ProcID{1}),
		Rotation: 2,
		Info:     []wire.CommitInfo{{PID: 1}},
	}
	// Same seq as current (not newer) — must be ignored.
	m.HandleTokenFrame(stale.AppendTo(nil), h.now)
	if m.Counters().Installs != installs || !m.Ring().Equal(ring) {
		t.Fatalf("stale commit disturbed the ring: %v", m.Ring())
	}
	// A commit that does not include us is ignored too.
	foreign := &wire.Commit{
		NewRing:  evs.NewConfiguration(evs.ViewID{Rep: 7, Seq: ring.ID.Seq + 10}, []evs.ProcID{7, 8}),
		Rotation: 2,
		Info:     []wire.CommitInfo{{PID: 7}, {PID: 8}},
	}
	m.HandleTokenFrame(foreign.AppendTo(nil), h.now)
	if m.Counters().Installs != installs {
		t.Fatal("foreign commit installed")
	}
}

// TestMalformedFramesIgnored: garbage on either channel must not crash or
// disturb the machine.
func TestMalformedFramesIgnored(t *testing.T) {
	h := newMemHarness(t, 1, 2)
	h.waitOperational(3 * time.Second)
	m := h.machines[1]
	before := m.Ring()
	for _, b := range [][]byte{nil, {1, 2, 3}, {0xAC, 0x47, 1, 99}, {0xAC, 0x47, 9, 1}} {
		m.HandleDataFrame(b, h.now)
		m.HandleTokenFrame(b, h.now)
	}
	// A data frame that decodes but is for an unknown ring: dropped.
	d := wire.Data{RingID: evs.ViewID{Rep: 77, Seq: 1}, Seq: 1, Sender: 77, Service: evs.Agreed}
	m.HandleTokenFrame(d.AppendTo(nil), h.now) // wrong channel: ignored
	if !m.Ring().Equal(before) || m.State() != StateOperational {
		t.Fatalf("malformed frames disturbed the machine: %v %v", m.State(), m.Ring())
	}
}

// TestCommitTimeoutFallsBackToGather: if the commit token vanishes (its
// carrier died), members return to gather and eventually form a ring.
func TestCommitTimeoutFallsBackToGather(t *testing.T) {
	h := newMemHarness(t, 1, 2, 3)
	// Drop every commit frame so the commit phase always times out, then
	// heal; the machines must recover on the next attempt.
	attempts := 0
	h.drop = func(from, to evs.ProcID, token bool, frame []byte) bool {
		if !token {
			return false
		}
		ft, _ := wire.PeekType(frame)
		if ft == wire.FrameCommit && attempts < 3 {
			attempts++
			return true
		}
		return false
	}
	h.waitOperational(10 * time.Second)
	if attempts == 0 {
		t.Fatal("no commit frames were dropped; test is vacuous")
	}
	var timeouts uint64
	for _, m := range h.machines {
		timeouts += m.Counters().CommitTimeouts
	}
	if timeouts == 0 {
		t.Fatal("commit drops healed without any commit timeout")
	}
}
