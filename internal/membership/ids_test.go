package membership

import (
	"math/rand"
	"testing"
	"testing/quick"

	"accelring/internal/evs"
)

func TestIDSetBasics(t *testing.T) {
	s := newIDSet(3, 1, 2, 3, 1)
	if len(s) != 3 || s[0] != 1 || s[1] != 2 || s[2] != 3 {
		t.Fatalf("newIDSet dedupe/sort failed: %v", s)
	}
	if !s.contains(2) || s.contains(4) {
		t.Fatal("contains wrong")
	}
	if s.min() != 1 {
		t.Fatalf("min = %d", s.min())
	}
	var empty idSet
	if empty.min() != 0 || empty.contains(1) {
		t.Fatal("empty set misbehaves")
	}
}

func TestIDSetOperations(t *testing.T) {
	a := newIDSet(1, 2, 3)
	b := newIDSet(3, 4)

	if got := a.with(2); !got.equal(a) {
		t.Fatalf("with existing = %v", got)
	}
	if got := a.with(5); !got.equal(newIDSet(1, 2, 3, 5)) {
		t.Fatalf("with new = %v", got)
	}
	if got := a.union(b); !got.equal(newIDSet(1, 2, 3, 4)) {
		t.Fatalf("union = %v", got)
	}
	if got := a.union(nil); !got.equal(a) {
		t.Fatalf("union nil = %v", got)
	}
	if got := a.minus(b); !got.equal(newIDSet(1, 2)) {
		t.Fatalf("minus = %v", got)
	}
	if a.equal(b) || !a.equal(newIDSet(3, 2, 1)) {
		t.Fatal("equal wrong")
	}
}

// TestQuickIDSetLaws property-tests algebraic laws of the set type.
func TestQuickIDSetLaws(t *testing.T) {
	gen := func(rng *rand.Rand) idSet {
		n := rng.Intn(10)
		ids := make([]evs.ProcID, n)
		for i := range ids {
			ids[i] = evs.ProcID(rng.Intn(8) + 1)
		}
		return newIDSet(ids...)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := gen(rng), gen(rng)
		// Commutativity of union.
		if !a.union(b).equal(b.union(a)) {
			return false
		}
		// union ⊇ both.
		u := a.union(b)
		for _, p := range a {
			if !u.contains(p) {
				return false
			}
		}
		// minus removes exactly b's members.
		d := a.minus(b)
		for _, p := range d {
			if b.contains(p) {
				return false
			}
		}
		for _, p := range a {
			if !b.contains(p) && !d.contains(p) {
				return false
			}
		}
		// with is idempotent.
		if len(a) > 0 {
			p := a[rng.Intn(len(a))]
			if !a.with(p).equal(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
