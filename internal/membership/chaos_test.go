package membership

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"accelring/internal/evs"
	"accelring/internal/faults"
)

// TestChaosRandomFaultSchedules drives random kill/partition/heal/submit
// schedules against a cluster of machines and then checks the EVS
// consistency invariants:
//
//  1. per-configuration agreement — for every regular configuration and
//     every pair of members that delivered messages in it, one member's
//     delivery sequence is a prefix of the other's (members may part ways
//     mid-configuration, but never deliver conflicting orders);
//  2. self delivery — no member delivers its own message twice;
//  3. convergence — after faults stop and the network heals, all live
//     machines end operational on one shared ring.
// Seeds come from faults.Seeds, so a failing schedule can be replayed
// with FAULTS_SEED=<seed>.
func TestChaosRandomFaultSchedules(t *testing.T) {
	seeds := faults.Seeds(1, 2, 3, 4, 5, 6, 7, 8)
	if testing.Short() && len(seeds) > 2 {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, faults.ReplaySeed(t, seed))
		})
	}
}

func runChaos(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := 3 + rng.Intn(3) // 3..5 machines
	ids := make([]evs.ProcID, n)
	for i := range ids {
		ids[i] = evs.ProcID(i + 1)
	}
	h := newMemHarness(t, ids...)
	h.waitOperational(5 * time.Second)

	// partition assigns each machine a side; frames cross only within a
	// side. side 0 for everyone = fully connected.
	side := make(map[evs.ProcID]int)
	h.drop = func(from, to evs.ProcID, token bool, frame []byte) bool {
		return side[from] != side[to]
	}

	var msgCount int
	submit := func(id evs.ProcID) {
		if h.dead[id] {
			return
		}
		msgCount++
		payload := fmt.Sprintf("c-%d-%d", id, msgCount)
		svc := evs.Agreed
		if rng.Intn(2) == 0 {
			svc = evs.Safe
		}
		// Submission may fail while the machine is reforming; that is
		// allowed, callers retry in real systems.
		_ = h.machines[id].Submit([]byte(payload), svc)
	}

	// Random schedule: a few fault/heal/submit steps with time advances.
	steps := 8 + rng.Intn(8)
	for s := 0; s < steps; s++ {
		switch rng.Intn(5) {
		case 0: // kill one live machine (keep at least two alive)
			live := liveIDs(h, ids)
			if len(live) > 2 {
				h.dead[live[rng.Intn(len(live))]] = true
			}
		case 1: // partition into two sides
			for _, id := range ids {
				side[id] = rng.Intn(2)
			}
		case 2: // heal the partition
			for _, id := range ids {
				side[id] = 0
			}
		default: // traffic burst
			for i := 0; i < 1+rng.Intn(4); i++ {
				submit(ids[rng.Intn(n)])
			}
		}
		h.advance(time.Duration(50+rng.Intn(300)) * time.Millisecond)
	}

	// Heal everything and let survivors converge.
	for _, id := range ids {
		side[id] = 0
	}
	h.advance(2 * time.Second)
	live := liveIDs(h, ids)
	deadline := h.now.Add(10 * time.Second)
	for h.now.Before(deadline) {
		if converged(h, live) {
			break
		}
		h.advance(50 * time.Millisecond)
	}
	if !converged(h, live) {
		for _, id := range live {
			t.Logf("machine %d: state=%v ring=%v", id, h.machines[id].State(), h.machines[id].Ring())
		}
		t.Fatalf("seed %d: live machines did not converge", seed)
	}

	checkPerConfigAgreement(t, h, ids)
	checkNoDuplicateDeliveries(t, h, ids)
}

func liveIDs(h *memHarness, ids []evs.ProcID) []evs.ProcID {
	var out []evs.ProcID
	for _, id := range ids {
		if !h.dead[id] {
			out = append(out, id)
		}
	}
	return out
}

func converged(h *memHarness, live []evs.ProcID) bool {
	if len(live) == 0 {
		return true
	}
	ref := h.machines[live[0]].Ring()
	if h.machines[live[0]].State() != StateOperational || len(ref.Members) != len(live) {
		return false
	}
	for _, id := range live[1:] {
		if h.machines[id].State() != StateOperational || !h.machines[id].Ring().Equal(ref) {
			return false
		}
	}
	return true
}

// checkPerConfigAgreement verifies invariant 1: group each member's
// delivered messages by the configuration they were delivered in; for any
// two members and any shared configuration, one sequence must be a prefix
// of the other.
func checkPerConfigAgreement(t *testing.T, h *memHarness, ids []evs.ProcID) {
	t.Helper()
	type key struct {
		cfg evs.ViewID
	}
	perMember := make(map[evs.ProcID]map[key][]string)
	for _, id := range ids {
		segs := make(map[key][]string)
		for _, m := range h.outs[id].messages() {
			k := key{cfg: m.Config}
			segs[k] = append(segs[k], fmt.Sprintf("%d:%s", m.Seq, m.Payload))
		}
		perMember[id] = segs
	}
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			for k, seqA := range perMember[a] {
				seqB, ok := perMember[b][k]
				if !ok {
					continue
				}
				short := seqA
				long := seqB
				if len(short) > len(long) {
					short, long = long, short
				}
				for x := range short {
					if short[x] != long[x] {
						t.Fatalf("members %d and %d disagree in config %v at %d: %q vs %q",
							a, b, k.cfg, x, short[x], long[x])
					}
				}
			}
		}
	}
}

// checkNoDuplicateDeliveries verifies invariant 2: a (config, seq) pair is
// delivered at most once per member.
func checkNoDuplicateDeliveries(t *testing.T, h *memHarness, ids []evs.ProcID) {
	t.Helper()
	for _, id := range ids {
		seen := make(map[string]bool)
		for _, m := range h.outs[id].messages() {
			k := fmt.Sprintf("%v/%d", m.Config, m.Seq)
			if seen[k] {
				t.Fatalf("member %d delivered %s twice", id, k)
			}
			seen[k] = true
		}
	}
}
