// Package membership implements the ring's membership algorithm in the
// style of Totem/Spread, which the paper's Accelerated Ring protocol reuses
// unchanged (§II): token-loss detection, a join/gather phase that reaches
// agreement on the set of connected participants, a two-rotation commit
// token that forms the new ring, and an Extended Virtual Synchrony recovery
// phase that exchanges old-ring messages among survivors and delivers
// transitional and regular configuration changes.
//
// The Machine is a deterministic state machine: the driver feeds it
// received frames, explicit time, and periodic ticks; it produces frames
// and delivery events through its Output. It owns the ordering engine for
// the currently installed ring and replaces it on each membership change.
package membership

import (
	"errors"
	"fmt"
	"time"

	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/flowcontrol"
	"accelring/internal/obs"
	"accelring/internal/wire"
)

// State is the machine's phase.
type State int

const (
	// StateGather: broadcasting joins, collecting the connected set.
	StateGather State = iota + 1
	// StateCommit: a commit token is circulating the agreed membership.
	StateCommit
	// StateRecover: the new ring is installed; survivors are exchanging
	// old-ring messages before normal operation resumes.
	StateRecover
	// StateOperational: the ordering protocol is running normally.
	StateOperational
)

func (s State) String() string {
	switch s {
	case StateGather:
		return "gather"
	case StateCommit:
		return "commit"
	case StateRecover:
		return "recover"
	case StateOperational:
		return "operational"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Timeouts are the membership algorithm's timing parameters.
type Timeouts struct {
	// JoinInterval is how often joins are rebroadcast while gathering.
	JoinInterval time.Duration
	// Gather bounds one gather attempt before the machine forces progress
	// (extending twice, then declaring unresponsive participants failed).
	Gather time.Duration
	// Commit bounds the commit token's circulation before falling back to
	// gather.
	Commit time.Duration
	// TokenLoss is how long the operational ring may go without a token
	// before membership is rerun.
	TokenLoss time.Duration
	// TokenRetransmit is how long a participant waits before resending
	// the last token it sent (duplicates are suppressed by token seq).
	TokenRetransmit time.Duration
	// Beacon is how often an operational ring multicasts a presence
	// announcement so that foreign (partitioned or newly started) rings
	// discover each other and merge. Zero defaults to TokenLoss.
	Beacon time.Duration
}

// DefaultTimeouts returns production defaults for a LAN.
func DefaultTimeouts() Timeouts {
	return Timeouts{
		JoinInterval:    100 * time.Millisecond,
		Gather:          1 * time.Second,
		Commit:          1 * time.Second,
		TokenLoss:       1 * time.Second,
		TokenRetransmit: 250 * time.Millisecond,
	}
}

func (t *Timeouts) validate() error {
	if t.JoinInterval <= 0 || t.Gather <= 0 || t.Commit <= 0 ||
		t.TokenLoss <= 0 || t.TokenRetransmit <= 0 {
		return errors.New("membership: all timeouts must be positive")
	}
	if t.Beacon == 0 {
		t.Beacon = t.TokenLoss
	}
	if t.Beacon < 0 {
		return errors.New("membership: beacon interval must be positive")
	}
	return nil
}

// beaconAttempt marks a join frame as an operational presence beacon
// rather than a membership attempt.
const beaconAttempt = 0

// Config parameterizes a Machine.
type Config struct {
	// Self is this participant.
	Self evs.ProcID
	// Windows are the ordering protocol's flow-control parameters, used
	// for every ring the machine installs.
	Windows flowcontrol.Windows
	// Priority is the token-priority method for installed rings.
	Priority core.PriorityMethod
	// DelayedRequests selects the accelerated retransmission rule.
	DelayedRequests bool
	// Timeouts are the membership timing parameters (defaults applied
	// when zero).
	Timeouts Timeouts
	// Observer receives membership metrics (state gauge, install counts,
	// gather/recovery durations) and is handed to every installed ring's
	// ordering engine for round tracing. Nil disables observation.
	Observer *obs.RingObserver
}

// Output receives the machine's effects. Multicast frames are data-class;
// Unicast frames are token-class. Deliver receives the application's event
// stream: messages and configuration changes in EVS order.
//
// Frame slices are machine-owned encode scratch, valid only for the
// duration of the call: implementations must transmit or copy them before
// returning and never retain them. Delivered Message payloads, in
// contrast, are handed off for keeps.
type Output interface {
	Multicast(frame []byte)
	Unicast(to evs.ProcID, frame []byte)
	Deliver(ev evs.Event)
}

// ErrNotOperational is returned by Submit before a ring is installed.
var ErrNotOperational = errors.New("membership: no ring installed yet")

// Machine is the membership + ordering protocol for one participant.
// It is not safe for concurrent use; a single driver goroutine owns it.
type Machine struct {
	cfg Config
	out Output

	state State
	// ring is the installed regular configuration (zero before the first).
	ring evs.Configuration
	eng  *core.Engine
	// ringSeqHigh is the highest configuration sequence seen anywhere.
	ringSeqHigh uint64
	attempt     uint32

	// gather state
	joins            map[evs.ProcID]*wire.Join
	failed           idSet
	joinResendAt     time.Time
	gatherDeadline   time.Time
	gatherExtensions int
	// consensusFloor delays ring formation briefly so that slow members'
	// joins (e.g. a member still draining its data backlog) are heard
	// before a smaller ring is committed.
	consensusFloor time.Time

	// commit state
	commitDeadline time.Time
	installedRing  evs.ViewID
	ringStarted    bool

	// recovery state
	rec *recovery

	// operational timers
	lastTokenAt   time.Time
	lastRetransAt time.Time
	beaconAt      time.Time
	// prevRingID suppresses foreign-traffic triggers from frames of the
	// ring we just left.
	prevRingID evs.ViewID

	counters Counters
	// stateSince is when the current phase was entered; lastNow is the
	// most recent driver time, for transitions that happen inside
	// callbacks without a now parameter (finalizeRecovery).
	stateSince time.Time
	lastNow    time.Time

	// Hot-path scratch (the machine is single-threaded): tokScratch and
	// dataScratch are the reusable frame decoders — safe because the
	// engine treats received tokens as read-only and copies data structs —
	// and encBuf is the reusable encode buffer behind the engine's sends
	// (the Output contract forbids retaining frames).
	tokScratch  wire.Token
	dataScratch wire.Data
	encBuf      []byte
}

// Counters exposes membership activity.
type Counters struct {
	// Installs counts rings installed.
	Installs uint64
	// GatherEntries counts transitions into the gather state.
	GatherEntries uint64
	// TokenRetransmits counts token retransmissions.
	TokenRetransmits uint64
	// CommitTimeouts counts commit phases that fell back to gather.
	CommitTimeouts uint64
}

// New creates a machine. It starts in the gather state; call Tick (and
// feed frames) to drive it. now is the current time.
func New(cfg Config, out Output, now time.Time) (*Machine, error) {
	if cfg.Self == 0 {
		return nil, errors.New("membership: config requires Self")
	}
	if err := cfg.Windows.Validate(); err != nil {
		return nil, err
	}
	var zero Timeouts
	if cfg.Timeouts == zero {
		cfg.Timeouts = DefaultTimeouts()
	}
	if err := cfg.Timeouts.validate(); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, errors.New("membership: nil Output")
	}
	m := &Machine{cfg: cfg, out: out}
	m.enterGather(now)
	return m, nil
}

// State returns the current phase.
func (m *Machine) State() State { return m.state }

// Ring returns the installed configuration (zero before the first).
func (m *Machine) Ring() evs.Configuration { return m.ring }

// Counters returns a snapshot of membership counters.
func (m *Machine) Counters() Counters { return m.counters }

// Engine returns the ordering engine of the installed ring, or nil.
// Exposed for tests and stats only.
func (m *Machine) Engine() *core.Engine { return m.eng }

// DataPriority reports whether data-class frames should be processed
// before token-class frames right now (§III-D). Drivers with both classes
// pending consult it.
func (m *Machine) DataPriority() bool {
	return m.eng != nil && m.eng.DataPriority()
}

// Submit queues an application payload for totally ordered multicast.
// It fails before the first ring is installed; during membership changes
// messages queue in the engine and flow once the ring re-forms.
func (m *Machine) Submit(payload []byte, service evs.Service) error {
	if m.eng == nil {
		return ErrNotOperational
	}
	return m.eng.Submit(payload, service)
}

// SubmitHeld is Submit for payloads that waited in a packing bundle
// since held (zero means no hold); see core.Engine.SubmitHeld.
func (m *Machine) SubmitHeld(payload []byte, service evs.Service, held time.Time) error {
	if m.eng == nil {
		return ErrNotOperational
	}
	return m.eng.SubmitHeld(payload, service, held)
}

// DrainSampledSent forwards core.Engine.DrainSampledSent for the
// installed ring's engine (no-op before the first ring forms).
func (m *Machine) DrainSampledSent(fn func(seq uint64)) {
	if m.eng != nil {
		m.eng.DrainSampledSent(fn)
	}
}

// CanSubmit reports whether Submit would be accepted right now (a ring
// has formed at least once). Drivers that stage submissions — the
// adaptive packing layer — use it to fail fast at stage time instead of
// discovering ErrNotOperational at flush time, after the submitter was
// already acknowledged.
func (m *Machine) CanSubmit() bool { return m.eng != nil }

// obsReg returns the observer's registry, or nil. Registry handles are
// nil-safe, so metric updates can be written unconditionally against it.
func (m *Machine) obsReg() *obs.Registry {
	if m.cfg.Observer == nil {
		return nil
	}
	return m.cfg.Observer.Reg
}

// metricName scopes a membership metric with the observer's per-ring label
// (identity without one), so a sharded node's rings report separately.
func (m *Machine) metricName(base string) string {
	return m.cfg.Observer.MetricName(base)
}

// flight returns the observer's black-box recorder (nil: recording off).
func (m *Machine) flight() *obs.FlightRecorder {
	return m.cfg.Observer.Recorder()
}

// ringLabel is the observer's shard label for flight events.
func (m *Machine) ringLabel() string {
	if m.cfg.Observer == nil {
		return ""
	}
	return m.cfg.Observer.Label
}

// setState transitions the machine's phase, recording for the observer the
// membership.state gauge and — on leaving gather or recover — how long the
// phase lasted. now is driver time (wall or simulated).
func (m *Machine) setState(s State, now time.Time) {
	if fr := m.flight(); fr != nil && m.state != s {
		fr.Record(obs.FlightEvent{Kind: obs.FlightState, Ring: m.ringLabel(), At: now, Note: s.String()})
	}
	if reg := m.obsReg(); reg != nil && m.state != s {
		if !now.IsZero() && !m.stateSince.IsZero() {
			switch m.state {
			case StateGather:
				reg.Histogram(m.metricName("membership.gather_ns"), obs.DurationBuckets()).ObserveDuration(now.Sub(m.stateSince))
			case StateRecover:
				reg.Histogram(m.metricName("membership.recovery_ns"), obs.DurationBuckets()).ObserveDuration(now.Sub(m.stateSince))
			}
		}
		reg.Gauge(m.metricName("membership.state")).Set(int64(s))
	}
	m.state = s
	m.stateSince = now
}

// alive returns the current gather candidate set: self plus everyone whose
// join was heard this attempt, minus the failed set.
func (m *Machine) alive() idSet {
	s := newIDSet(m.cfg.Self)
	for p := range m.joins {
		s = s.with(p)
	}
	return s.minus(m.failed)
}

// enterGather (re)starts the membership algorithm.
func (m *Machine) enterGather(now time.Time) {
	if m.state == StateOperational || m.state == StateRecover || m.state == 0 {
		// A fresh membership incident: forget old failure declarations.
		// They were only ever a device to force the PREVIOUS gather to
		// converge; carrying them over would permanently exclude healthy
		// peers and livelock merges (each side keeps re-forming without
		// the other).
		m.failed = nil
	}
	m.setState(StateGather, now)
	m.counters.GatherEntries++
	m.obsReg().Counter(m.metricName("membership.gather_entries")).Inc()
	m.attempt++
	m.joins = make(map[evs.ProcID]*wire.Join)
	m.gatherExtensions = 0
	if !m.ring.ID.IsZero() && m.ring.ID.Seq > m.ringSeqHigh {
		m.ringSeqHigh = m.ring.ID.Seq
	}
	m.broadcastJoin(now)
	m.gatherDeadline = now.Add(m.cfg.Timeouts.Gather)
	m.consensusFloor = now.Add(2 * m.cfg.Timeouts.JoinInterval)
}

func (m *Machine) broadcastJoin(now time.Time) {
	j := wire.Join{
		Sender:  m.cfg.Self,
		Alive:   m.alive(),
		Failed:  m.failed,
		RingSeq: m.ringSeqHigh,
		Attempt: m.attempt,
	}
	m.out.Multicast(j.AppendTo(nil))
	m.joinResendAt = now.Add(m.cfg.Timeouts.JoinInterval)
}

// HandleDataFrame processes a frame received on the data channel: an
// application data message or a membership join.
//
// It reports whether the frame was retained: data frames are decoded
// zero-copy, so when the engine buffers the message it keeps the frame's
// payload region alive until delivery and stability. A retained frame must
// not be recycled (bufpool.Put) or reused by the caller; a non-retained
// one may be recycled immediately.
func (m *Machine) HandleDataFrame(frame []byte, now time.Time) (retained bool) {
	m.lastNow = now
	t, err := wire.PeekType(frame)
	if err != nil {
		return false
	}
	switch t {
	case wire.FrameJoin:
		j, err := wire.DecodeJoin(frame)
		if err != nil {
			return false
		}
		m.handleJoin(j, now)
	case wire.FrameData:
		if m.eng == nil || (m.state != StateOperational && m.state != StateRecover) {
			return false
		}
		d := &m.dataScratch
		if err := d.DecodeFrom(frame); err != nil {
			return false
		}
		if d.RingID != m.ring.ID {
			// Foreign traffic: another ring is reachable. Ignore frames
			// from the ring we just left; anything else means a merge is
			// due (Totem's foreign-message rule).
			if m.state == StateOperational && d.RingID != m.prevRingID {
				m.enterGather(now)
			}
			return false
		}
		return m.eng.HandleData(d)
	}
	return false
}

// HandleTokenFrame processes a frame received on the token channel: a
// regular token or a membership commit token. Token-class frames are never
// retained: the caller may recycle the frame as soon as the call returns.
func (m *Machine) HandleTokenFrame(frame []byte, now time.Time) {
	m.lastNow = now
	t, err := wire.PeekType(frame)
	if err != nil {
		return
	}
	switch t {
	case wire.FrameToken:
		if m.eng == nil || (m.state != StateOperational && m.state != StateRecover) {
			return
		}
		// Scratch decode: the engine treats received tokens as read-only,
		// and DecodeFrom copies everything out of the frame, so neither
		// the token nor the frame is retained past this call.
		tok := &m.tokScratch
		if err := tok.DecodeFrom(frame); err != nil {
			return
		}
		before := m.eng.Counters().Rounds
		m.eng.HandleToken(tok)
		if m.eng.Counters().Rounds > before {
			m.lastTokenAt = now
		}
	case wire.FrameCommit:
		c, err := wire.DecodeCommit(frame)
		if err != nil {
			return
		}
		m.handleCommit(c, now)
	}
}

func (m *Machine) handleJoin(j *wire.Join, now time.Time) {
	if j.Sender == m.cfg.Self {
		return
	}
	if j.RingSeq > m.ringSeqHigh {
		m.ringSeqHigh = j.RingSeq
	}
	if j.Attempt == beaconAttempt {
		// A presence beacon from an operational ring. If the sender is
		// not in our ring, two rings can reach each other: merge.
		if m.state == StateOperational && !m.ring.Contains(j.Sender) {
			m.enterGather(now)
		}
		return
	}
	switch m.state {
	case StateOperational:
		// A join while operational means a member lost the ring or an
		// outsider wants to merge: rerun membership.
		m.enterGather(now)
	case StateCommit, StateRecover:
		// Let the current formation finish (or time out); the joiner will
		// keep retrying.
		return
	}
	prevAlive := m.alive()
	prevFailed := m.failed
	m.joins[j.Sender] = j
	// A join is proof of life: drop any failure declaration about its
	// sender. Declarations exist to force convergence past UNRESPONSIVE
	// processors; one we are hearing from is not unresponsive. Without
	// this, declarations made during a network incident persist after it
	// heals — every gathering machine rebroadcasts its failed set and
	// re-adopts its peers', so the all-mutually-failed state is a stable
	// fixed point in which every machine forms singleton rings forever.
	m.failed = m.failed.minus(newIDSet(j.Sender))
	// Adopt failure declarations about anyone but ourselves — except
	// processors whose own joins we are hearing this attempt: direct
	// evidence of life outranks gossip.
	adopt := idSet(nil)
	for _, q := range j.Failed {
		if q == m.cfg.Self || m.joins[q] != nil {
			continue
		}
		adopt = adopt.with(q)
	}
	m.failed = m.failed.union(adopt)
	changed := !m.failed.equal(prevFailed) || !m.alive().equal(prevAlive)
	if changed {
		m.broadcastJoin(now)
	}
	m.checkConsensus(now)
}

// checkConsensus declares the gather complete when every candidate has
// announced exactly our candidate and failed sets. The lowest-ID member
// then forms the ring with a commit token.
func (m *Machine) checkConsensus(now time.Time) {
	if m.state != StateGather {
		return
	}
	if now.Before(m.consensusFloor) {
		// Too early: more joins may be in flight. Tick re-checks.
		return
	}
	alive := m.alive()
	if len(alive) == 1 && m.gatherExtensions < 2 {
		// Never conclude we are alone before the full gather window has
		// run: peers' joins may merely be delayed, and a hasty singleton
		// ring causes endless churn of form-and-merge.
		return
	}
	for _, p := range alive {
		if p == m.cfg.Self {
			continue
		}
		j := m.joins[p]
		if j == nil || !newIDSet(j.Alive...).equal(alive) || !newIDSet(j.Failed...).equal(m.failed) {
			return
		}
	}
	if alive.min() != m.cfg.Self {
		// Wait for the representative's commit token.
		m.setState(StateCommit, now)
		m.commitDeadline = now.Add(m.cfg.Timeouts.Commit)
		return
	}
	m.sendFirstCommit(alive, now)
}

// sendFirstCommit builds the rotation-1 commit token, fills our own entry,
// and sends it to our successor on the new ring.
func (m *Machine) sendFirstCommit(alive idSet, now time.Time) {
	id := evs.ViewID{Rep: m.cfg.Self, Seq: m.ringSeqHigh + 1}
	c := &wire.Commit{
		NewRing:  evs.NewConfiguration(id, alive),
		Rotation: 1,
		Info:     make([]wire.CommitInfo, len(alive)),
	}
	for i, p := range c.NewRing.Members {
		c.Info[i].PID = p
	}
	m.fillCommitInfo(c)
	m.setState(StateCommit, now)
	m.commitDeadline = now.Add(m.cfg.Timeouts.Commit)
	m.forwardCommit(c)
}

func (m *Machine) fillCommitInfo(c *wire.Commit) {
	for i := range c.Info {
		if c.Info[i].PID != m.cfg.Self {
			continue
		}
		in := &c.Info[i]
		in.Received = true
		// Report the ring still owed recovery: if a previous recovery was
		// aborted by this membership change, that is the recovery's old
		// ring, not the intermediate ring the application never installed.
		eng, ring := m.eng, m.ring
		if m.rec != nil && m.rec.oldEng != nil {
			eng, ring = m.rec.oldEng, m.rec.oldRing
		}
		if eng != nil && !ring.ID.IsZero() {
			in.OldRing = ring.ID
			in.Aru = eng.Aru()
			in.HighSeq = eng.High()
			in.HighDelivered = eng.Delivered()
		}
		return
	}
}

func (m *Machine) forwardCommit(c *wire.Commit) {
	c.Seq++
	m.out.Unicast(c.NewRing.Successor(m.cfg.Self), c.AppendTo(nil))
}

func allReceived(c *wire.Commit) bool {
	for i := range c.Info {
		if !c.Info[i].Received {
			return false
		}
	}
	return true
}

func (m *Machine) handleCommit(c *wire.Commit, now time.Time) {
	if !c.NewRing.Contains(m.cfg.Self) {
		return
	}
	if len(c.Info) != len(c.NewRing.Members) {
		return
	}
	if c.NewRing.ID == m.installedRing {
		// Rotation-2 token completing its loop back to the
		// representative: time to start the ring's first regular token.
		if c.NewRing.ID.Rep == m.cfg.Self && !m.ringStarted {
			m.startRing()
		}
		return
	}
	if !m.ring.ID.IsZero() && c.NewRing.ID.Seq <= m.ring.ID.Seq {
		return // stale commit for a ring we've moved past
	}
	if c.NewRing.ID.Seq > m.ringSeqHigh {
		m.ringSeqHigh = c.NewRing.ID.Seq
	}
	switch c.Rotation {
	case 1:
		m.fillCommitInfo(c)
		if c.NewRing.ID.Rep == m.cfg.Self && allReceived(c) {
			// The gathering rotation is complete: promote and install.
			c.Rotation = 2
			m.install(c, now)
			m.forwardCommit(c)
			return
		}
		m.setState(StateCommit, now)
		m.commitDeadline = now.Add(m.cfg.Timeouts.Commit)
		m.forwardCommit(c)
	case 2:
		m.install(c, now)
		m.forwardCommit(c)
	}
}

// startRing injects the new ring's first regular token, addressed to
// ourselves (the representative), through the normal token path.
func (m *Machine) startRing() {
	m.ringStarted = true
	tok := core.NewInitialToken(m.ring.ID, 0)
	m.out.Unicast(m.cfg.Self, tok.AppendTo(nil))
}

// Tick drives the machine's timers. Call it periodically (a few times per
// JoinInterval) and after handling frames.
func (m *Machine) Tick(now time.Time) {
	m.lastNow = now
	switch m.state {
	case StateGather:
		if now.After(m.joinResendAt) || now.Equal(m.joinResendAt) {
			m.broadcastJoin(now)
		}
		m.checkConsensus(now)
		if m.state == StateGather && now.After(m.gatherDeadline) {
			m.gatherTimeout(now)
		}
	case StateCommit:
		if now.After(m.commitDeadline) {
			m.counters.CommitTimeouts++
			m.obsReg().Counter(m.metricName("membership.commit_timeouts")).Inc()
			if fr := m.flight(); fr != nil {
				fr.Record(obs.FlightEvent{Kind: obs.FlightState, Ring: m.ringLabel(), At: now, Note: "commit_timeout"})
			}
			m.enterGather(now)
		}
	case StateOperational, StateRecover:
		m.tokenTimers(now)
		if m.state == StateOperational && now.After(m.beaconAt) {
			b := wire.Join{
				Sender:  m.cfg.Self,
				Alive:   m.ring.Members,
				RingSeq: m.ring.ID.Seq,
				Attempt: beaconAttempt,
			}
			m.out.Multicast(b.AppendTo(nil))
			m.beaconAt = now.Add(m.cfg.Timeouts.Beacon)
		}
	}
}

func (m *Machine) gatherTimeout(now time.Time) {
	if m.gatherExtensions < 2 {
		// Give slow joiners more time before declaring failures.
		m.gatherExtensions++
		m.gatherDeadline = now.Add(m.cfg.Timeouts.Gather)
		m.broadcastJoin(now)
		return
	}
	// Declare everyone who has not converged with us failed and retry.
	alive := m.alive()
	for _, p := range alive {
		if p == m.cfg.Self {
			continue
		}
		j := m.joins[p]
		if j == nil || !newIDSet(j.Alive...).equal(alive) {
			m.failed = m.failed.with(p)
		}
	}
	m.joins = make(map[evs.ProcID]*wire.Join)
	m.gatherExtensions = 0
	m.gatherDeadline = now.Add(m.cfg.Timeouts.Gather)
	m.attempt++
	m.broadcastJoin(now)
	m.checkConsensus(now)
}

func (m *Machine) tokenTimers(now time.Time) {
	if m.lastTokenAt.IsZero() {
		m.lastTokenAt = now
		return
	}
	since := now.Sub(m.lastTokenAt)
	if since >= m.cfg.Timeouts.TokenLoss {
		// The ring is broken: rerun membership. The engine is frozen and
		// its buffered messages survive into recovery.
		m.enterGather(now)
		return
	}
	if since >= m.cfg.Timeouts.TokenRetransmit && now.Sub(m.lastRetransAt) >= m.cfg.Timeouts.TokenRetransmit {
		if tok := m.eng.LastToken(); tok != nil {
			m.encBuf = tok.AppendTo(m.encBuf[:0])
			m.out.Unicast(m.ring.Successor(m.cfg.Self), m.encBuf)
			m.lastRetransAt = now
			m.counters.TokenRetransmits++
			m.obsReg().Counter(m.metricName("membership.token_retransmits")).Inc()
			if fr := m.flight(); fr != nil {
				fr.Record(obs.FlightEvent{
					Kind: obs.FlightTokenTx, Ring: m.ringLabel(), At: now, Note: "retransmit",
					Seq: tok.Seq, Aru: tok.Aru, Fcc: tok.Fcc,
				})
			}
		}
	}
}
