package bench

import (
	"strings"
	"testing"
)

func TestFigureIDsKnown(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 20 {
		t.Fatalf("expected 20 experiments (13 figures + max-throughput + shard scaling + 5 ablations), got %d", len(ids))
	}
	s := &Suite{Quick: true}
	if _, err := s.Figure("nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFig1Schedule(t *testing.T) {
	s := &Suite{Quick: true}
	tbl, err := s.Figure("fig1")
	if err != nil {
		t.Fatal(err)
	}
	// The accelerated schedule must show exactly the paper's pattern per
	// participant: 2 pre-token sends, the token, 3 post-token sends.
	var pre, post int
	var tokenSeqs []string
	for _, row := range tbl.Rows {
		if row[0] != "accelerated" {
			continue
		}
		switch {
		case row[3] == "send-token":
			// Collect first occurrences of non-empty token seq values
			// (the initial rotation carries 0).
			if row[4] != "0" && (len(tokenSeqs) == 0 || tokenSeqs[len(tokenSeqs)-1] != row[4]) {
				tokenSeqs = append(tokenSeqs, row[4])
			}
		case row[5] == "pre-token":
			pre++
		case row[5] == "post-token":
			post++
		}
	}
	if pre != 8 || post != 12 {
		t.Fatalf("accelerated sends pre=%d post=%d, want 8/12 (2+3 per participant, 4 rounds)", pre, post)
	}
	// The token must carry exactly the paper's seq values 5, 10, 15, 20 —
	// identical to the original protocol — even though it leaves early.
	want := []string{"5", "10", "15", "20"}
	if len(tokenSeqs) != len(want) {
		t.Fatalf("token seqs = %v, want %v", tokenSeqs, want)
	}
	for i, w := range want {
		if tokenSeqs[i] != w {
			t.Fatalf("token seq sequence = %v, want %v", tokenSeqs, want)
		}
	}
	// The original schedule has no post-token sends at all.
	for _, row := range tbl.Rows {
		if row[0] == "original" && row[5] == "post-token" {
			t.Fatalf("original schedule contains a post-token send: %v", row)
		}
	}
}

func TestMaxThroughputShape(t *testing.T) {
	if testing.Short() {
		t.Skip("saturating sweeps are slow")
	}
	s := &Suite{Quick: true}
	tbl, err := s.Figure("maxthroughput")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 9 {
		t.Fatalf("rows = %d, want 9 (3 fabrics × 3 impls)", len(tbl.Rows))
	}
	// Every row: accelerated >= original (the headline claim).
	for _, row := range tbl.Rows {
		if !strings.HasPrefix(row[5], "+") {
			t.Fatalf("accelerated did not win on %v", row)
		}
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"n1"},
	}
	tbl.AddRow("1", "2")
	out := tbl.Format()
	for _, want := range []string{"# t — demo", "a", "bb", "1", "2", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format() missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "b,с"},
		Notes:   []string{"note one"},
	}
	tbl.AddRow("1", `va"l`)
	out := tbl.CSV()
	for _, want := range []string{"# t: demo", "# note one", `a,"b,с"`, `1,"va""l"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV() missing %q:\n%s", want, out)
		}
	}
}
