package bench

import (
	"encoding/json"
	"fmt"

	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

// ShardPoint is the measured aggregate for one shard count.
type ShardPoint struct {
	// Shards is the number of independent rings.
	Shards int `json:"shards"`
	// RingMbps is each ring's own measured goodput.
	RingMbps []float64 `json:"ring_mbps"`
	// AggregateMbps is the summed ordered-payload throughput.
	AggregateMbps float64 `json:"aggregate_mbps"`
	// Speedup is AggregateMbps over the single-ring baseline.
	Speedup float64 `json:"speedup"`
	// MeanLatencyUs is the mean delivery latency averaged over rings.
	MeanLatencyUs float64 `json:"mean_latency_us"`
}

// ShardReport records the multi-ring scaling experiment: a single-ring
// baseline plus one point per shard count, all at equal flow-control
// windows on the same fabric. It is the source for results/BENCH_shard.json.
type ShardReport struct {
	Fabric       string  `json:"fabric"`
	Nodes        int     `json:"nodes"`
	Profile      string  `json:"profile"`
	PayloadBytes int     `json:"payload_bytes"`
	Windows      Windows `json:"windows"`
	Seed         int64   `json:"seed"`
	Quick        bool    `json:"quick"`
	// BaselineMbps is the single-ring saturated goodput at the same
	// windows — the denominator of every Speedup.
	BaselineMbps      float64      `json:"baseline_mbps"`
	BaselineLatencyUs float64      `json:"baseline_latency_us"`
	Points            []ShardPoint `json:"points"`
}

// ShardThroughput measures how aggregate ordering throughput scales with
// the shard count of the Multi-Ring layer. Each ring of a sharded
// deployment is a fully independent protocol instance — its own engine,
// membership machine, sockets, and token, with no shared protocol state —
// so the virtual-time testbed models an S-shard deployment as S
// independent simulated clusters at equal windows (each with its own
// workload seed) and sums their measured goodputs. Saturating senders,
// Agreed delivery, daemon prototype.
func (s *Suite) ShardThroughput(shardCounts ...int) (*ShardReport, error) {
	fabric := simnet.TenGigFabric(8)
	w := fabricWindows(fabric)
	rep := &ShardReport{
		Fabric:       "10GbE",
		Nodes:        fabric.Nodes,
		Profile:      "daemon",
		PayloadBytes: 1350,
		Windows:      w,
		Seed:         s.seed(),
		Quick:        s.Quick,
	}
	point := func(label string, seed int64) (Result, error) {
		return s.run(RunConfig{
			Fabric: fabric, Profile: simproc.Daemon(), Protocol: AcceleratedRing,
			Windows: w, Service: evs.Agreed, PayloadBytes: rep.PayloadBytes,
			Seed: seed,
		}, label)
	}
	base, err := point("shard baseline (1 ring)", s.seed())
	if err != nil {
		return nil, err
	}
	rep.BaselineMbps = base.GoodputMbps
	rep.BaselineLatencyUs = base.MeanLatencyUs
	for _, sc := range shardCounts {
		pt := ShardPoint{Shards: sc}
		var latSum float64
		for r := 0; r < sc; r++ {
			res, err := point(fmt.Sprintf("shard ring %d/%d", r, sc),
				s.seed()+int64(sc)*1_000_003+int64(r+1)*7919)
			if err != nil {
				return nil, err
			}
			pt.RingMbps = append(pt.RingMbps, res.GoodputMbps)
			pt.AggregateMbps += res.GoodputMbps
			latSum += res.MeanLatencyUs
		}
		pt.MeanLatencyUs = latSum / float64(sc)
		if rep.BaselineMbps > 0 {
			pt.Speedup = pt.AggregateMbps / rep.BaselineMbps
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// JSON renders the report for results/BENCH_shard.json.
func (r *ShardReport) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Table renders the report as a text table alongside the other figures.
func (r *ShardReport) Table() *Table {
	t := &Table{
		ID: "shard",
		Title: fmt.Sprintf("Multi-ring sharding: aggregate ordered throughput vs shard count (%s, %dB, %s prototype, saturating senders, Agreed)",
			r.Fabric, r.PayloadBytes, r.Profile),
		Columns: []string{"shards", "per-ring Mbps", "aggregate Mbps", "speedup", "mean µs"},
		Notes: []string{
			"each ring is an independent protocol instance (own engine, membership, sockets, token) at equal flow-control windows; rings are measured on dedicated fabrics and summed",
			"aggregates above one NIC's capacity assume one interface per ring",
		},
	}
	t.AddRow("1", mbps(r.BaselineMbps), mbps(r.BaselineMbps), "1.00x",
		fmt.Sprintf("%.0f", r.BaselineLatencyUs))
	for _, p := range r.Points {
		var rings string
		for i, g := range p.RingMbps {
			if i > 0 {
				rings += " "
			}
			rings += mbps(g)
		}
		t.AddRow(fmt.Sprintf("%d", p.Shards), rings, mbps(p.AggregateMbps),
			fmt.Sprintf("%.2fx", p.Speedup), fmt.Sprintf("%.0f", p.MeanLatencyUs))
	}
	return t
}

// shardFigure runs the default scaling sweep (2 and 4 shards).
func (s *Suite) shardFigure() (*Table, error) {
	rep, err := s.ShardThroughput(2, 4)
	if err != nil {
		return nil, err
	}
	return rep.Table(), nil
}
