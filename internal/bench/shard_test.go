package bench

import (
	"encoding/json"
	"testing"
)

// TestShardThroughputScales pins the tentpole's headline claim: at equal
// windows, a 2-shard deployment orders at least 1.5× the single-ring
// baseline's aggregate goodput.
func TestShardThroughputScales(t *testing.T) {
	if testing.Short() {
		t.Skip("saturating sweeps are slow")
	}
	s := &Suite{Quick: true}
	rep, err := s.ShardThroughput(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BaselineMbps <= 0 {
		t.Fatalf("baseline goodput %v", rep.BaselineMbps)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("points = %d, want 1", len(rep.Points))
	}
	pt := rep.Points[0]
	if pt.Shards != 2 || len(pt.RingMbps) != 2 {
		t.Fatalf("point shape: %+v", pt)
	}
	for r, g := range pt.RingMbps {
		if g <= 0 {
			t.Fatalf("ring %d ordered nothing", r)
		}
	}
	if pt.Speedup < 1.5 {
		t.Fatalf("2-shard speedup %.2fx, want >= 1.5x (aggregate %.0f vs baseline %.0f Mbps)",
			pt.Speedup, pt.AggregateMbps, rep.BaselineMbps)
	}

	// The JSON report round-trips and the table renders every point.
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back ShardReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.BaselineMbps != rep.BaselineMbps || len(back.Points) != 1 {
		t.Fatalf("JSON round-trip mangled the report: %+v", back)
	}
	tbl := rep.Table()
	if tbl.ID != "shard" || len(tbl.Rows) != 2 {
		t.Fatalf("table shape: id=%q rows=%d", tbl.ID, len(tbl.Rows))
	}
}

// TestShardThroughputDeterministic: equal suites produce equal reports.
func TestShardThroughputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("saturating sweeps are slow")
	}
	run := func() *ShardReport {
		rep, err := (&Suite{Quick: true}).ShardThroughput(2)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	ja, _ := a.JSON()
	jb, _ := b.JSON()
	if string(ja) != string(jb) {
		t.Fatalf("replay diverged:\n%s\nvs\n%s", ja, jb)
	}
}
