package bench

import (
	"fmt"
	"strings"
)

// Table is the text rendering of one reproduced figure or table.
type Table struct {
	// ID is the experiment identifier ("fig2", "maxthroughput", ...).
	ID string
	// Title describes the experiment, mirroring the paper's caption.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, one slice per row.
	Rows [][]string
	// Notes are appended under the table (units, markers).
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (header row, then data rows;
// the title and notes become leading comment lines).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// us formats a latency in microseconds; saturated (unsupported) points are
// marked with a trailing '*'.
func us(r Result, offered float64) string {
	if r.Delivered == 0 {
		return "-"
	}
	cell := fmt.Sprintf("%.0f", r.MeanLatencyUs)
	if offered > 0 && r.GoodputMbps < 0.95*offered {
		cell += "*"
	}
	return cell
}

// mbps formats a throughput cell.
func mbps(v float64) string { return fmt.Sprintf("%.0f", v) }
