package bench

import (
	"fmt"

	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

// fig1 reproduces the paper's Figure 1: the send schedule of three
// participants multicasting twenty messages under the original and the
// accelerated protocol (Personal window 5, Accelerated window 3). The
// table lists every send event in virtual-time order; under the
// accelerated protocol each participant's token send appears after two
// data messages, with three more following it carrying the post-token
// flag, while the token still carries the same seq values (5, 10, 15, 20).
func (s *Suite) fig1() (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "Example execution: 3 participants, 20 messages, Personal window 5, Accelerated window 3",
		Columns: []string{"variant", "time", "participant", "event", "seq", "phase"},
		Notes: []string{
			"library prototype on the 1 GbE fabric; data messages are 1350 bytes",
			"compare: the accelerated token leaves after 2 of 5 sends but carries the identical seq",
		},
	}
	for _, variant := range []string{"original", "accelerated"} {
		events, err := fig1Trace(variant == "accelerated")
		if err != nil {
			return nil, err
		}
		for _, ev := range events {
			phase := "pre-token"
			if ev.PostToken {
				phase = "post-token"
			}
			if ev.Kind == "send-token" {
				phase = ""
			}
			t.AddRow(variant, ev.At.String(), fmt.Sprintf("%c", 'A'+int(ev.Node)),
				ev.Kind, fmt.Sprintf("%d", ev.Seq), phase)
		}
	}
	return t, nil
}

// Fig1Trace runs the Figure 1 scenario and returns the send events for
// the first 20 messages plus the token sends between them. Exposed for
// cmd/ringtrace's timeline rendering.
func Fig1Trace(accelerated bool) ([]simproc.TraceEvent, error) {
	return fig1Trace(accelerated)
}

// fig1Trace runs the Figure 1 scenario and returns the send events for the
// first 20 messages plus the token sends between them.
func fig1Trace(accelerated bool) ([]simproc.TraceEvent, error) {
	fabric := simnet.GigabitFabric(3)
	var opts simproc.Options
	if accelerated {
		opts = simproc.AcceleratedOptions(fabric, simproc.Library(), 5, 100, 3)
	} else {
		opts = simproc.OriginalOptions(fabric, simproc.Library(), 5, 100)
	}
	c, err := simproc.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	var events []simproc.TraceEvent
	for _, n := range c.Nodes {
		n.SetTrace(func(ev simproc.TraceEvent) {
			if ev.Kind == "send-data" || ev.Kind == "send-token" {
				events = append(events, ev)
			}
		})
	}
	// Paper Figure 1: A sends 1-5 and 16-20, B sends 6-10, C sends 11-15.
	submit := func(node, count int) {
		for i := 0; i < count; i++ {
			c.Nodes[node].Submit(make([]byte, 1350), evs.Agreed)
		}
	}
	submit(0, 5)
	submit(1, 5)
	submit(2, 5)
	// A's second batch arrives while the first round is in flight.
	c.Sim.After(50*simnet.Microsecond, func() { submit(0, 5) })
	c.Sim.RunUntil(10 * simnet.Millisecond)

	// Keep events up to and including the send of message 20 — under the
	// accelerated protocol that is after the token carrying seq 20.
	cut := len(events)
	for i, ev := range events {
		if ev.Kind == "send-data" && ev.Seq == 20 {
			cut = i + 1
			break
		}
	}
	return events[:cut], nil
}
