// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation on the simulated testbed. Each figure is a sweep
// of Runs; a Run builds a simulated cluster, offers load, measures delivery
// latency and goodput over a warm measurement window, and returns a Result.
package bench

import (
	"fmt"
	"math/rand"

	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
	"accelring/internal/stats"
	"accelring/internal/wire"
	"accelring/internal/workload"
)

// Protocol selects the ordering protocol variant under test.
type Protocol int

const (
	// OriginalRing is the Totem-style baseline.
	OriginalRing Protocol = iota + 1
	// AcceleratedRing is the paper's contribution.
	AcceleratedRing
)

func (p Protocol) String() string {
	if p == AcceleratedRing {
		return "accel"
	}
	return "orig"
}

// Windows bundles the flow-control parameters of one run.
type Windows struct {
	Personal, Global, Accelerated int
}

// RunConfig fully describes one measurement point.
type RunConfig struct {
	// Fabric is the simulated network.
	Fabric simnet.Config
	// Profile is the implementation cost model.
	Profile simproc.Profile
	// Protocol selects original vs accelerated.
	Protocol Protocol
	// Windows are the flow-control parameters.
	Windows Windows
	// Service is the delivery level measured.
	Service evs.Service
	// PayloadBytes is the application payload size (1350 or 8850).
	PayloadBytes int
	// OfferedMbps is the aggregate clean-payload injection rate in Mbit/s.
	// Zero means saturating senders (maximum-throughput measurement).
	OfferedMbps float64
	// Warmup and Measure bound the measurement window in virtual time.
	// Zero values default to 50 ms and 200 ms.
	Warmup, Measure simnet.Time
	// DrainGrace is extra virtual time to let in-flight messages finish.
	// Defaults to 100 ms.
	DrainGrace simnet.Time
	// Seed drives workload jitter and loss.
	Seed int64
	// LossPct makes every node drop this percentage of received data
	// packets, independently (the paper's §IV-A4 experiments).
	LossPct float64
	// LossDistance, when positive, makes each node drop LossPct of the
	// data sent by the node LossDistance positions before it on the ring
	// (Figure 13). LossPct must be set too.
	LossDistance int

	// priorityOverride forces a token-priority method regardless of the
	// protocol variant (ablation studies only).
	priorityOverride core.PriorityMethod
	// requestsOverride forces the retransmission-request rule (ablation
	// studies only).
	requestsOverride requestRule
}

// requestRule optionally overrides the retransmission-request horizon.
type requestRule int

const (
	requestDefault requestRule = iota
	// requestImmediate pairs any variant with the original protocol's
	// request-on-sight rule.
	requestImmediate
	// requestDelayed pairs any variant with the accelerated protocol's
	// one-round-late rule.
	requestDelayed
)

func (c *RunConfig) defaults() {
	if c.Warmup == 0 {
		c.Warmup = 50 * simnet.Millisecond
	}
	if c.Measure == 0 {
		c.Measure = 200 * simnet.Millisecond
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = 100 * simnet.Millisecond
	}
}

// Result is one measured point.
type Result struct {
	// GoodputMbps is the clean-payload throughput actually ordered and
	// delivered during the measurement window.
	GoodputMbps float64
	// MeanLatencyUs is the mean delivery latency (client to client) in
	// microseconds, over all receivers.
	MeanLatencyUs float64
	// Worst5Us is the mean of the worst 5% of latencies per sender,
	// averaged across senders (the paper's dashed lines).
	Worst5Us float64
	// P99Us is the 99th-percentile latency.
	P99Us float64
	// Delivered is the number of measured deliveries.
	Delivered int
	// Retransmissions counts retransmissions sent during the whole run.
	Retransmissions uint64
	// SwitchDrops and SockDrops count congestion losses during the run.
	SwitchDrops, SockDrops uint64
	// Rounds is the token rounds completed at node 0 during the whole run.
	Rounds uint64
}

// Run executes one measurement point and returns its Result.
func Run(cfg RunConfig) (Result, error) {
	cfg.defaults()
	opts := clusterOptions(cfg)
	c, err := simproc.NewCluster(opts)
	if err != nil {
		return Result{}, fmt.Errorf("bench: %w", err)
	}
	installLoss(c, cfg)

	n := len(c.Nodes)
	wStart := cfg.Warmup
	wEnd := cfg.Warmup + cfg.Measure

	// Measurement hooks.
	var all stats.Latency
	perSender := make(map[evs.ProcID]*stats.Latency)
	seqSeen := make(map[uint64]struct{})
	var payloadBytes uint64
	hop := cfg.Profile.ClientHop
	c.SetDeliverHook(func(node simnet.NodeID, m evs.Message, at simnet.Time) {
		// Goodput counts deliveries completed inside the window (a
		// saturated system delivers messages injected long before).
		if node == 0 && at >= wStart && at < wEnd {
			if _, dup := seqSeen[m.Seq]; !dup {
				seqSeen[m.Seq] = struct{}{}
				payloadBytes += uint64(len(m.Payload))
			}
		}
		// Latency tracks messages injected inside the window.
		ts := simproc.PayloadStamp(m.Payload)
		if ts < wStart || ts >= wEnd {
			return
		}
		lat := int64(at + hop - ts)
		all.Add(lat)
		rec := perSender[m.Sender]
		if rec == nil {
			rec = &stats.Latency{}
			perSender[m.Sender] = rec
		}
		rec.Add(lat)
	})

	// Workload.
	until := wEnd
	for i, node := range c.Nodes {
		gen := &workload.Generator{
			Sim:         c.Sim,
			Rng:         rand.New(rand.NewSource(cfg.Seed + int64(i)*7919)),
			PayloadSize: cfg.PayloadBytes,
			Service:     cfg.Service,
		}
		if cfg.OfferedMbps > 0 {
			rate := workload.SpreadRate(cfg.OfferedMbps*1e6, cfg.PayloadBytes, n)
			gen.RunRate(node, rate, until)
		} else {
			// Saturating: refill a personal window every half of the time
			// a fully loaded round takes on the wire (2× oversubscribed,
			// enough to never starve without flooding the client queue).
			batch := cfg.Windows.Personal
			roundWire := float64(batch*cfg.PayloadBytes*8*n) / cfg.Fabric.LinkBitsPerSec * 1e9
			every := simnet.Time(roundWire / 2)
			if every < 10*simnet.Microsecond {
				every = 10 * simnet.Microsecond
			}
			gen.RunSaturating(node, batch, every, until)
		}
	}

	c.Sim.RunUntil(wEnd + cfg.DrainGrace)

	var res Result
	res.Delivered = all.Count()
	res.MeanLatencyUs = all.Mean() / 1e3
	res.P99Us = float64(all.Percentile(99)) / 1e3
	if len(perSender) > 0 {
		var sum float64
		for _, rec := range perSender {
			sum += rec.WorstMean(0.05)
		}
		res.Worst5Us = sum / float64(len(perSender)) / 1e3
	}
	res.GoodputMbps = stats.Mbps(stats.Rate(payloadBytes, int64(cfg.Measure)))
	netStats := c.Net.Stats()
	res.SwitchDrops = netStats.SwitchDrops
	for _, node := range c.Nodes {
		res.Retransmissions += node.Engine().Counters().Retransmitted
		res.SockDrops += node.Stats().DataSockDrops
	}
	res.Rounds = c.Nodes[0].Engine().Counters().Rounds
	return res, nil
}

func clusterOptions(cfg RunConfig) simproc.Options {
	w := cfg.Windows
	var opts simproc.Options
	if cfg.Protocol == AcceleratedRing {
		opts = simproc.AcceleratedOptions(cfg.Fabric, cfg.Profile, w.Personal, w.Global, w.Accelerated)
	} else {
		opts = simproc.OriginalOptions(cfg.Fabric, cfg.Profile, w.Personal, w.Global)
	}
	if cfg.priorityOverride != 0 {
		opts.Priority = cfg.priorityOverride
	}
	switch cfg.requestsOverride {
	case requestImmediate:
		opts.DelayedRequests = false
	case requestDelayed:
		opts.DelayedRequests = true
	}
	return opts
}

// installLoss wires the configured loss model into the fabric's ingress.
func installLoss(c *simproc.Cluster, cfg RunConfig) {
	if cfg.LossPct <= 0 {
		return
	}
	n := len(c.Nodes)
	if cfg.LossDistance > 0 {
		// Positional loss: node i drops LossPct of data sent by the node
		// LossDistance positions before it in ring order.
		d := cfg.LossDistance
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x10c5))
		c.Net.SetIngressFilter(func(to simnet.NodeID, p *simnet.Packet) bool {
			if p.Kind == wire.FrameToken {
				// The paper's loss experiments drop only data messages:
				// token loss is rare (separate socket) and handled by
				// membership, which is identical for both protocols.
				return false
			}
			loser := int(to)
			sender := (loser - d + n) % n
			if int(p.From) != sender {
				return false
			}
			return rng.Float64()*100 < cfg.LossPct
		})
		return
	}
	// Uniform loss: every node drops LossPct of received data packets,
	// independently. A datagram spanning multiple network frames (payloads
	// above the 1500-byte MTU, kernel-fragmented per §IV-A3) is lost if
	// ANY of its frames is lost, so its effective drop probability is
	// 1-(1-p)^frames.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x10c5))
	c.Net.SetIngressFilter(func(to simnet.NodeID, p *simnet.Packet) bool {
		if p.Kind == wire.FrameToken {
			return false
		}
		frames := (p.Wire + 1499) / 1500
		pSurvive := 1.0
		for i := 0; i < frames; i++ {
			pSurvive *= 1 - cfg.LossPct/100
		}
		return rng.Float64() >= pSurvive
	})
}
