package bench

import "testing"

func TestAblationsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := &Suite{Quick: true}
	for _, id := range []string{"ablation-aw", "ablation-priority", "ablation-rtr", "ablation-buffer"} {
		tbl, err := s.Figure(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		t.Logf("\n%s", tbl.Format())
	}
}
