package bench

import (
	"fmt"

	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

// Suite generates the paper's figures. Quick mode shortens measurement
// windows and thins sweeps for use in tests and `go test -bench`; the full
// mode (cmd/ringbench) regenerates complete curves.
type Suite struct {
	// Quick selects reduced sweeps and windows.
	Quick bool
	// Seed makes every run deterministic. Zero means 42.
	Seed int64
	// Progress, when set, is called before each run with a description.
	Progress func(string)
}

func (s *Suite) seed() int64 {
	if s.Seed == 0 {
		return 42
	}
	return s.Seed
}

func (s *Suite) times() (warmup, measure simnet.Time) {
	if s.Quick {
		return 20 * simnet.Millisecond, 60 * simnet.Millisecond
	}
	return 50 * simnet.Millisecond, 200 * simnet.Millisecond
}

// windows returns the tuned flow-control parameters for a fabric, chosen
// per the paper's method (smallest personal window reaching maximum
// throughput; accelerated window about three quarters of it).
func fabricWindows(fabric simnet.Config) Windows {
	if fabric.LinkBitsPerSec >= 1e10 {
		return Windows{Personal: 30, Global: 240, Accelerated: 20}
	}
	return Windows{Personal: 20, Global: 160, Accelerated: 15}
}

type impl struct {
	name string
	prof simproc.Profile
}

func allImpls() []impl {
	return []impl{
		{"library", simproc.Library()},
		{"daemon", simproc.Daemon()},
		{"spread", simproc.Spread()},
	}
}

func (s *Suite) progress(format string, args ...any) {
	if s.Progress != nil {
		s.Progress(fmt.Sprintf(format, args...))
	}
}

func (s *Suite) rates(full, quick []float64) []float64 {
	if s.Quick {
		return quick
	}
	return full
}

// run executes one point with the suite's windows and timing defaults.
func (s *Suite) run(cfg RunConfig, label string) (Result, error) {
	s.progress("%s", label)
	cfg.Warmup, cfg.Measure = s.times()
	if cfg.Seed == 0 {
		cfg.Seed = s.seed()
	}
	return Run(cfg)
}

// latencyCurve produces a latency-vs-throughput table: one row per offered
// rate, one column per implementation × protocol.
func (s *Suite) latencyCurve(id, title string, fabric simnet.Config, svc evs.Service,
	payload int, rateList []float64, impls []impl) (*Table, error) {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Mbps"},
		Notes: []string{
			"cells: mean delivery latency in µs; '*' marks points where measured goodput fell below 95% of offered load (beyond saturation)",
		},
	}
	protos := []Protocol{OriginalRing, AcceleratedRing}
	for _, im := range impls {
		for _, p := range protos {
			t.Columns = append(t.Columns, fmt.Sprintf("%s/%s", im.name, p))
		}
	}
	w := fabricWindows(fabric)
	for _, rate := range rateList {
		row := []string{mbps(rate)}
		for _, im := range impls {
			for _, p := range protos {
				res, err := s.run(RunConfig{
					Fabric: fabric, Profile: im.prof, Protocol: p,
					Windows: w, Service: svc, PayloadBytes: payload,
					OfferedMbps: rate,
				}, fmt.Sprintf("%s %s/%s %.0fMbps", id, im.name, p, rate))
				if err != nil {
					return nil, err
				}
				row = append(row, us(res, rate))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// payloadCurve compares 1350-byte and 8850-byte payloads for the
// accelerated protocol (Figures 5 and 7).
func (s *Suite) payloadCurve(id, title string, svc evs.Service) (*Table, error) {
	fabric := simnet.TenGigFabric(8)
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"Mbps"},
		Notes:   []string{"accelerated protocol only; cells as in the latency curves"},
	}
	impls := allImpls()
	payloads := []int{1350, 8850}
	for _, im := range impls {
		for _, pl := range payloads {
			t.Columns = append(t.Columns, fmt.Sprintf("%s/%dB", im.name, pl))
		}
	}
	rateList := s.rates(
		[]float64{250, 500, 1000, 1500, 2000, 2500, 3000, 3500, 4000, 5000, 6000, 7000},
		[]float64{500, 2000, 4000, 6000},
	)
	w := fabricWindows(fabric)
	for _, rate := range rateList {
		row := []string{mbps(rate)}
		for _, im := range impls {
			for _, pl := range payloads {
				res, err := s.run(RunConfig{
					Fabric: fabric, Profile: im.prof, Protocol: AcceleratedRing,
					Windows: w, Service: svc, PayloadBytes: pl,
					OfferedMbps: rate,
				}, fmt.Sprintf("%s %s/%dB %.0fMbps", id, im.name, pl, rate))
				if err != nil {
					return nil, err
				}
				row = append(row, us(res, rate))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// lossCurve reproduces the §IV-A4 experiments: fixed goodput, sweeping the
// per-daemon loss rate, reporting mean and worst-5% latency for Agreed and
// Safe delivery under both protocols (Figures 9-12).
func (s *Suite) lossCurve(id, title string, fabric simnet.Config, goodputMbps float64) (*Table, error) {
	t := &Table{
		ID:    id,
		Title: title,
		Columns: []string{"loss%",
			"agreed/orig", "agreed/accel", "safe/orig", "safe/accel",
			"w5.agreed/orig", "w5.agreed/accel", "w5.safe/orig", "w5.safe/accel"},
		Notes: []string{
			fmt.Sprintf("daemon prototype, %d-node loss applied independently per daemon, aggregate goodput %.0f Mbps", fabric.Nodes, goodputMbps),
			"w5.* columns: mean of the worst 5% latencies per sender (the paper's dashed lines)",
		},
	}
	lossList := s.rates(
		[]float64{0, 1, 2.5, 5, 10, 15, 20, 25},
		[]float64{0, 5, 15, 25},
	)
	w := fabricWindows(fabric)
	prof := simproc.Daemon()
	for _, loss := range lossList {
		row := []string{fmt.Sprintf("%g", loss)}
		var means, worsts []string
		for _, svc := range []evs.Service{evs.Agreed, evs.Safe} {
			for _, p := range []Protocol{OriginalRing, AcceleratedRing} {
				res, err := s.run(RunConfig{
					Fabric: fabric, Profile: prof, Protocol: p,
					Windows: w, Service: svc, PayloadBytes: 1350,
					OfferedMbps: goodputMbps, LossPct: loss,
					DrainGrace: 200 * simnet.Millisecond,
				}, fmt.Sprintf("%s %v/%s loss=%g%%", id, svc, p, loss))
				if err != nil {
					return nil, err
				}
				means = append(means, us(res, goodputMbps))
				worsts = append(worsts, fmt.Sprintf("%.0f", res.Worst5Us))
			}
		}
		row = append(row, means...)
		row = append(row, worsts...)
		t.AddRow(row...)
	}
	return t, nil
}

// fig13 sweeps the ring distance between each losing daemon and the daemon
// it loses from, at 20% positional loss.
func (s *Suite) fig13() (*Table, error) {
	fabric := simnet.TenGigFabric(8)
	t := &Table{
		ID:    "fig13",
		Title: "Latency vs ring distance between loser and sender (20% positional loss, 480 Mbps, 10 GbE, daemon prototype)",
		Columns: []string{"distance",
			"agreed/orig", "agreed/accel", "safe/orig", "safe/accel"},
		Notes: []string{"each daemon drops 20% of the messages sent by the daemon `distance` positions before it on the ring"},
	}
	distances := []int{1, 2, 3, 4, 5, 6, 7}
	if s.Quick {
		distances = []int{1, 4, 7}
	}
	w := fabricWindows(fabric)
	prof := simproc.Daemon()
	for _, d := range distances {
		row := []string{fmt.Sprintf("%d", d)}
		for _, svc := range []evs.Service{evs.Agreed, evs.Safe} {
			for _, p := range []Protocol{OriginalRing, AcceleratedRing} {
				res, err := s.run(RunConfig{
					Fabric: fabric, Profile: prof, Protocol: p,
					Windows: w, Service: svc, PayloadBytes: 1350,
					OfferedMbps: 480, LossPct: 20, LossDistance: d,
					DrainGrace: 200 * simnet.Millisecond,
				}, fmt.Sprintf("fig13 %v/%s d=%d", svc, p, d))
				if err != nil {
					return nil, err
				}
				row = append(row, us(res, 480))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// maxThroughput reproduces the maximum-throughput numbers quoted in the
// paper's abstract and §IV: saturating senders, measured goodput.
func (s *Suite) maxThroughput() (*Table, error) {
	t := &Table{
		ID:      "maxthroughput",
		Title:   "Maximum clean-payload throughput (Mbps), saturating senders, Agreed delivery",
		Columns: []string{"fabric", "payload", "impl", "orig", "accel", "accel gain"},
		Notes:   []string{"paper: 1G accel Spread >920; 10G 1350B lib 4.6G dmn 3.3G spr 2.1-2.3G; 10G 8850B lib 7.3G dmn 6G spr 5.2-5.3G"},
	}
	type point struct {
		fabric  simnet.Config
		name    string
		payload int
	}
	points := []point{
		{simnet.GigabitFabric(8), "1GbE", 1350},
		{simnet.TenGigFabric(8), "10GbE", 1350},
		{simnet.TenGigFabric(8), "10GbE", 8850},
	}
	for _, pt := range points {
		w := fabricWindows(pt.fabric)
		for _, im := range allImpls() {
			var got [2]float64
			for i, p := range []Protocol{OriginalRing, AcceleratedRing} {
				res, err := s.run(RunConfig{
					Fabric: pt.fabric, Profile: im.prof, Protocol: p,
					Windows: w, Service: evs.Agreed, PayloadBytes: pt.payload,
				}, fmt.Sprintf("max %s %dB %s/%s", pt.name, pt.payload, im.name, p))
				if err != nil {
					return nil, err
				}
				got[i] = res.GoodputMbps
			}
			gain := "-"
			if got[0] > 0 {
				gain = fmt.Sprintf("%+.0f%%", (got[1]/got[0]-1)*100)
			}
			t.AddRow(pt.name, fmt.Sprintf("%dB", pt.payload), im.name,
				mbps(got[0]), mbps(got[1]), gain)
		}
	}
	return t, nil
}

// Figure generates one experiment by ID.
func (s *Suite) Figure(id string) (*Table, error) {
	switch id {
	case "fig1":
		return s.fig1()
	case "fig2":
		return s.latencyCurve("fig2",
			"Agreed delivery latency vs throughput, 1 GbE, 1350-byte payloads",
			simnet.GigabitFabric(8), evs.Agreed, 1350,
			s.rates([]float64{100, 200, 300, 400, 500, 600, 700, 800, 900},
				[]float64{100, 400, 700, 900}),
			allImpls())
	case "fig3":
		return s.latencyCurve("fig3",
			"Safe delivery latency vs throughput, 1 GbE, 1350-byte payloads",
			simnet.GigabitFabric(8), evs.Safe, 1350,
			s.rates([]float64{100, 200, 300, 400, 500, 600, 700, 800, 900},
				[]float64{100, 400, 700, 900}),
			allImpls())
	case "fig4":
		return s.latencyCurve("fig4",
			"Agreed delivery latency vs throughput, 10 GbE, 1350-byte payloads",
			simnet.TenGigFabric(8), evs.Agreed, 1350,
			s.rates([]float64{100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2500, 3000, 3500, 4000, 4500},
				[]float64{250, 1000, 2000, 3000}),
			allImpls())
	case "fig5":
		return s.payloadCurve("fig5",
			"Agreed delivery latency vs throughput, 1350 vs 8850-byte payloads, 10 GbE", evs.Agreed)
	case "fig6":
		return s.latencyCurve("fig6",
			"Safe delivery latency vs throughput, 10 GbE, 1350-byte payloads",
			simnet.TenGigFabric(8), evs.Safe, 1350,
			s.rates([]float64{100, 250, 500, 750, 1000, 1250, 1500, 1750, 2000, 2500, 3000, 3500, 4000, 4500},
				[]float64{250, 1000, 2000, 3000}),
			allImpls())
	case "fig7":
		return s.payloadCurve("fig7",
			"Safe delivery latency vs throughput, 1350 vs 8850-byte payloads, 10 GbE", evs.Safe)
	case "fig8":
		return s.latencyCurve("fig8",
			"Safe delivery latency at low throughputs, 10 GbE (crossover region)",
			simnet.TenGigFabric(8), evs.Safe, 1350,
			s.rates([]float64{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000},
				[]float64{100, 400, 1000}),
			[]impl{{"spread", simproc.Spread()}, {"daemon", simproc.Daemon()}})
	case "fig9":
		return s.lossCurve("fig9",
			"Latency vs loss, 480 Mbps goodput, 10 GbE",
			simnet.TenGigFabric(8), 480)
	case "fig10":
		return s.lossCurve("fig10",
			"Latency vs loss, 1200 Mbps goodput, 10 GbE",
			simnet.TenGigFabric(8), 1200)
	case "fig11":
		return s.lossCurve("fig11",
			"Latency vs loss, 140 Mbps goodput, 1 GbE",
			simnet.GigabitFabric(8), 140)
	case "fig12":
		return s.lossCurve("fig12",
			"Latency vs loss, 350 Mbps goodput, 1 GbE",
			simnet.GigabitFabric(8), 350)
	case "fig13":
		return s.fig13()
	case "maxthroughput":
		return s.maxThroughput()
	case "shard":
		return s.shardFigure()
	case "ablation-aw":
		return s.ablationWindow()
	case "ablation-priority":
		return s.ablationPriority()
	case "ablation-rtr":
		return s.ablationRequestDelay()
	case "ablation-buffer":
		return s.ablationBuffer()
	case "ablation-packing":
		return s.ablationPacking()
	default:
		return nil, fmt.Errorf("bench: unknown figure %q (known: %v)", id, FigureIDs())
	}
}

// FigureIDs lists every reproducible experiment: the paper's figures and
// tables first, then the ablations of DESIGN.md §6.
func FigureIDs() []string {
	return []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "maxthroughput",
		"shard",
		"ablation-aw", "ablation-priority", "ablation-rtr", "ablation-buffer",
		"ablation-packing"}
}
