package bench

import (
	"testing"

	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

func quickCfg(proto Protocol, mbps float64) RunConfig {
	return RunConfig{
		Fabric:       simnet.GigabitFabric(8),
		Profile:      simproc.Daemon(),
		Protocol:     proto,
		Windows:      Windows{Personal: 20, Global: 160, Accelerated: 15},
		Service:      evs.Agreed,
		PayloadBytes: 1350,
		OfferedMbps:  mbps,
		Warmup:       20 * simnet.Millisecond,
		Measure:      60 * simnet.Millisecond,
		DrainGrace:   40 * simnet.Millisecond,
		Seed:         1,
	}
}

func TestRunProducesSaneResult(t *testing.T) {
	res, err := Run(quickCfg(AcceleratedRing, 200))
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries measured")
	}
	// Goodput should track the offered 200 Mbps within 15%.
	if res.GoodputMbps < 170 || res.GoodputMbps > 230 {
		t.Fatalf("goodput = %.1f Mbps, offered 200", res.GoodputMbps)
	}
	if res.MeanLatencyUs <= 0 || res.MeanLatencyUs > 5000 {
		t.Fatalf("mean latency = %.1f µs, implausible", res.MeanLatencyUs)
	}
	if res.Worst5Us < res.MeanLatencyUs {
		t.Fatalf("worst-5%% %.1f below mean %.1f", res.Worst5Us, res.MeanLatencyUs)
	}
	if res.Rounds == 0 {
		t.Fatal("no token rounds")
	}
	t.Logf("accel 200Mbps 1G: %+v", res)
}

// TestAcceleratedBeatsOriginalMidLoad checks the paper's headline claim at
// a mid-range 1 GbE load: the accelerated protocol delivers with lower
// latency at the same throughput.
func TestAcceleratedBeatsOriginalMidLoad(t *testing.T) {
	orig, err := Run(quickCfg(OriginalRing, 400))
	if err != nil {
		t.Fatal(err)
	}
	accel, err := Run(quickCfg(AcceleratedRing, 400))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("1G 400Mbps agreed: orig=%.0fµs accel=%.0fµs", orig.MeanLatencyUs, accel.MeanLatencyUs)
	if accel.MeanLatencyUs >= orig.MeanLatencyUs {
		t.Fatalf("accelerated latency %.1fµs not below original %.1fµs at 400 Mbps",
			accel.MeanLatencyUs, orig.MeanLatencyUs)
	}
}

func TestSaturatingRunMeasuresMaxThroughput(t *testing.T) {
	cfg := quickCfg(AcceleratedRing, 0) // saturating
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("1G accel daemon max: %.0f Mbps (rounds=%d drops: switch=%d sock=%d)",
		res.GoodputMbps, res.Rounds, res.SwitchDrops, res.SockDrops)
	// The 1 GbE fabric should saturate well above 700 Mbps of payload.
	// Aggregate ordered goodput may slightly exceed one link's line rate:
	// a sender's own eighth of the traffic never crosses its ingress
	// port. The ceiling is rate × n/(n-1) × payload/wire ≈ 1.09 Gbps.
	if res.GoodputMbps < 700 {
		t.Fatalf("max goodput = %.1f Mbps, want > 700", res.GoodputMbps)
	}
	if res.GoodputMbps > 1100 {
		t.Fatalf("max goodput = %.1f Mbps exceeds the physical ceiling", res.GoodputMbps)
	}
}

func TestLossRunRecoversAndRetransmits(t *testing.T) {
	cfg := quickCfg(AcceleratedRing, 140)
	cfg.LossPct = 10
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmissions == 0 {
		t.Fatal("10% loss produced no retransmissions")
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries under loss")
	}
	t.Logf("1G accel 140Mbps 10%% loss: mean=%.0fµs worst5=%.0fµs retrans=%d",
		res.MeanLatencyUs, res.Worst5Us, res.Retransmissions)
}

func TestPositionalLossDistanceMatters(t *testing.T) {
	lat := func(d int) float64 {
		cfg := quickCfg(AcceleratedRing, 140)
		cfg.LossPct = 20
		cfg.LossDistance = d
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatencyUs
	}
	near, far := lat(1), lat(7)
	t.Logf("positional loss: d=1 %.0fµs, d=7 %.0fµs", near, far)
	if far <= near {
		t.Fatalf("latency at distance 7 (%.0fµs) not above distance 1 (%.0fµs)", far, near)
	}
}
