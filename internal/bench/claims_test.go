package bench

import (
	"testing"

	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

// TestPaperClaims is the regression armor for the reproduction: each
// sub-test asserts one qualitative claim from the paper's evaluation, on
// quick-mode runs. If a refactor breaks the protocol's performance
// character, these fail before anyone reads a full ringbench sweep.
func TestPaperClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweeps")
	}
	base := func() RunConfig {
		return RunConfig{
			Fabric:       simnet.GigabitFabric(8),
			Profile:      simproc.Spread(),
			Windows:      Windows{Personal: 20, Global: 160, Accelerated: 15},
			Service:      evs.Agreed,
			PayloadBytes: 1350,
			Warmup:       20 * simnet.Millisecond,
			Measure:      80 * simnet.Millisecond,
			Seed:         42,
		}
	}

	t.Run("simultaneous throughput and latency win on 1GbE", func(t *testing.T) {
		// Paper §IV-A1: accel at 800 Mbps beats orig at 500 Mbps on BOTH
		// axes.
		lo := base()
		lo.Protocol = OriginalRing
		lo.OfferedMbps = 500
		orig, err := Run(lo)
		if err != nil {
			t.Fatal(err)
		}
		hi := base()
		hi.Protocol = AcceleratedRing
		hi.OfferedMbps = 800
		accel, err := Run(hi)
		if err != nil {
			t.Fatal(err)
		}
		if accel.MeanLatencyUs >= orig.MeanLatencyUs {
			t.Fatalf("accel at 800 Mbps (%.0fµs) not below orig at 500 Mbps (%.0fµs)",
				accel.MeanLatencyUs, orig.MeanLatencyUs)
		}
		if accel.GoodputMbps < 760 {
			t.Fatalf("accel did not sustain 800 Mbps: %.0f", accel.GoodputMbps)
		}
	})

	t.Run("fig8 crossover: original wins safe delivery at low 10GbE load", func(t *testing.T) {
		cfg := base()
		cfg.Fabric = simnet.TenGigFabric(8)
		cfg.Windows = Windows{Personal: 30, Global: 240, Accelerated: 20}
		cfg.Service = evs.Safe
		cfg.OfferedMbps = 100
		cfg.Protocol = OriginalRing
		orig, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Protocol = AcceleratedRing
		accel, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if orig.MeanLatencyUs >= accel.MeanLatencyUs {
			t.Fatalf("crossover missing: orig %.0fµs, accel %.0fµs at 100 Mbps",
				orig.MeanLatencyUs, accel.MeanLatencyUs)
		}
	})

	t.Run("loss penalty: accel agreed worse at low rate and heavy loss on 10GbE", func(t *testing.T) {
		// Paper Fig 9: the one-round-late request rule costs the
		// accelerated protocol the lead at 20% of capacity with >=5% loss.
		cfg := base()
		cfg.Fabric = simnet.TenGigFabric(8)
		cfg.Profile = simproc.Daemon()
		cfg.Windows = Windows{Personal: 30, Global: 240, Accelerated: 20}
		cfg.OfferedMbps = 480
		cfg.LossPct = 25
		cfg.DrainGrace = 200 * simnet.Millisecond
		cfg.Protocol = OriginalRing
		orig, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Protocol = AcceleratedRing
		accel, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if accel.MeanLatencyUs <= orig.MeanLatencyUs {
			t.Fatalf("expected accel penalty under heavy loss: orig %.0fµs accel %.0fµs",
				orig.MeanLatencyUs, accel.MeanLatencyUs)
		}
	})

	t.Run("loss advantage: accel safe better at 50% load on 1GbE", func(t *testing.T) {
		// Paper Fig 12.
		cfg := base()
		cfg.Profile = simproc.Daemon()
		cfg.Service = evs.Safe
		cfg.OfferedMbps = 350
		cfg.LossPct = 15
		cfg.DrainGrace = 200 * simnet.Millisecond
		cfg.Protocol = OriginalRing
		orig, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Protocol = AcceleratedRing
		accel, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if accel.MeanLatencyUs >= orig.MeanLatencyUs {
			t.Fatalf("accel safe not ahead under loss at 50%% load: orig %.0fµs accel %.0fµs",
				orig.MeanLatencyUs, accel.MeanLatencyUs)
		}
	})

	t.Run("jumbo datagrams raise spread max throughput >=2x", func(t *testing.T) {
		// Paper Fig 5 / §IV-A3: 8850-byte payloads amortize processing.
		cfg := base()
		cfg.Fabric = simnet.TenGigFabric(8)
		cfg.Windows = Windows{Personal: 30, Global: 240, Accelerated: 20}
		cfg.Protocol = AcceleratedRing
		small, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.PayloadBytes = 8850
		big, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if big.GoodputMbps < 2*small.GoodputMbps {
			t.Fatalf("jumbo gain too small: %.0f vs %.0f Mbps", big.GoodputMbps, small.GoodputMbps)
		}
	})
}
