package bench

import (
	"fmt"

	"accelring/internal/core"
	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

// ablationWindow sweeps the Accelerated window from 0 (the original
// protocol's sending pattern) to the full Personal window, quantifying how
// much of the round a participant may defer past the token before returns
// diminish.
func (s *Suite) ablationWindow() (*Table, error) {
	fabric := simnet.GigabitFabric(8)
	t := &Table{
		ID:      "ablation-aw",
		Title:   "Accelerated-window sweep: latency and max throughput vs AW (1 GbE, daemon prototype, PW=20)",
		Columns: []string{"AW", "agreed µs @500Mbps", "safe µs @500Mbps", "max Mbps"},
		Notes:   []string{"AW=0 reproduces the original protocol's sending pattern"},
	}
	aws := []int{0, 5, 10, 15, 20}
	if s.Quick {
		aws = []int{0, 10, 20}
	}
	for _, aw := range aws {
		cfg := RunConfig{
			Fabric:   fabric,
			Profile:  simproc.Daemon(),
			Protocol: AcceleratedRing,
			Windows:  Windows{Personal: 20, Global: 160, Accelerated: aw},
			Service:  evs.Agreed, PayloadBytes: 1350, OfferedMbps: 500,
		}
		agreed, err := s.run(cfg, fmt.Sprintf("aw=%d agreed", aw))
		if err != nil {
			return nil, err
		}
		cfg.Service = evs.Safe
		safe, err := s.run(cfg, fmt.Sprintf("aw=%d safe", aw))
		if err != nil {
			return nil, err
		}
		cfg.Service = evs.Agreed
		cfg.OfferedMbps = 0
		max, err := s.run(cfg, fmt.Sprintf("aw=%d max", aw))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", aw), us(agreed, 500), us(safe, 500), mbps(max.GoodputMbps))
	}
	return t, nil
}

// ablationPriority compares the two token-priority methods of §III-D under
// the accelerated protocol.
func (s *Suite) ablationPriority() (*Table, error) {
	fabric := simnet.TenGigFabric(8)
	t := &Table{
		ID:      "ablation-priority",
		Title:   "Token-priority method 1 (aggressive) vs 2 (conservative), accelerated protocol, 10 GbE daemon",
		Columns: []string{"Mbps", "agreed µs m1", "agreed µs m2", "safe µs m1", "safe µs m2"},
		Notes:   []string{"the prototypes use method 1; production Spread uses method 2 (§III-E)"},
	}
	rates := s.rates([]float64{250, 500, 1000, 1500, 2000, 2500}, []float64{500, 2000})
	for _, rate := range rates {
		row := []string{mbps(rate)}
		for _, svc := range []evs.Service{evs.Agreed, evs.Safe} {
			for _, pm := range []core.PriorityMethod{core.PriorityAggressive, core.PriorityConservative} {
				cfg := RunConfig{
					Fabric:   fabric,
					Profile:  simproc.Daemon(),
					Protocol: AcceleratedRing,
					Windows:  Windows{Personal: 30, Global: 240, Accelerated: 20},
					Service:  svc, PayloadBytes: 1350, OfferedMbps: rate,
				}
				res, err := s.runWithPriority(cfg, pm, fmt.Sprintf("prio=%v %v %.0fM", pm, svc, rate))
				if err != nil {
					return nil, err
				}
				row = append(row, us(res, rate))
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// runWithPriority is run with an explicit priority-method override.
func (s *Suite) runWithPriority(cfg RunConfig, pm core.PriorityMethod, label string) (Result, error) {
	s.progress("%s", label)
	cfg.Warmup, cfg.Measure = s.times()
	if cfg.Seed == 0 {
		cfg.Seed = s.seed()
	}
	cfg.priorityOverride = pm
	return Run(cfg)
}

// ablationRequestDelay shows why the accelerated protocol must delay
// retransmission requests by one round: requesting immediately (against
// a token that reflects in-flight messages) floods the ring with
// unnecessary retransmissions.
func (s *Suite) ablationRequestDelay() (*Table, error) {
	fabric := simnet.GigabitFabric(8)
	t := &Table{
		ID:      "ablation-rtr",
		Title:   "Request-one-round-late vs request-immediately under the accelerated protocol (1 GbE daemon, 350 Mbps)",
		Columns: []string{"loss%", "delayed µs", "immediate µs", "delayed retrans", "immediate retrans"},
		Notes:   []string{"'immediate' pairs accelerated sending with the original protocol's request rule — the combination §III-A warns against"},
	}
	losses := s.rates([]float64{0, 5, 10, 20}, []float64{0, 10})
	for _, loss := range losses {
		var lat [2]Result
		for i, delayed := range []bool{true, false} {
			cfg := RunConfig{
				Fabric:   fabric,
				Profile:  simproc.Daemon(),
				Protocol: AcceleratedRing,
				Windows:  Windows{Personal: 20, Global: 160, Accelerated: 15},
				Service:  evs.Agreed, PayloadBytes: 1350, OfferedMbps: 350,
				LossPct: loss, DrainGrace: 200 * simnet.Millisecond,
			}
			if !delayed {
				cfg.requestsOverride = requestImmediate
			}
			s.progress("rtr delayed=%v loss=%g", delayed, loss)
			cfg.Warmup, cfg.Measure = s.times()
			cfg.Seed = s.seed()
			res, err := Run(cfg)
			if err != nil {
				return nil, err
			}
			lat[i] = res
		}
		t.AddRow(fmt.Sprintf("%g", loss),
			us(lat[0], 350), us(lat[1], 350),
			fmt.Sprintf("%d", lat[0].Retransmissions),
			fmt.Sprintf("%d", lat[1].Retransmissions))
	}
	return t, nil
}

// ablationPacking quantifies Spread-style small-message packing (the
// §IV discussion's cost-amortization point, internal/pack): 200-byte
// application messages sent bare versus packed six to a bundle.
func (s *Suite) ablationPacking() (*Table, error) {
	fabric := simnet.TenGigFabric(8)
	t := &Table{
		ID:      "ablation-packing",
		Title:   "Small-message packing: 200-byte messages bare vs packed 6-per-bundle (10 GbE, spread profile, accelerated)",
		Columns: []string{"mode", "max kmsg/s", "max payload Mbps"},
		Notes: []string{
			"packed bundles are 1227 bytes (pack header + 6 × (4+200)); per-message protocol and processing costs are amortized across the bundle",
		},
	}
	w := fabricWindows(fabric)
	const (
		bare      = 200
		perBundle = 6
		bundle    = 3 + perBundle*(4+bare) // internal/pack layout
	)
	for _, mode := range []string{"bare", "packed"} {
		payload := bare
		scale := 1.0
		if mode == "packed" {
			payload = bundle
			scale = perBundle
		}
		cfg := RunConfig{
			Fabric:   fabric,
			Profile:  simproc.Spread(),
			Protocol: AcceleratedRing,
			Windows:  w,
			Service:  evs.Agreed, PayloadBytes: payload,
		}
		res, err := s.run(cfg, "packing "+mode)
		if err != nil {
			return nil, err
		}
		// Goodput is measured in bundle payload bytes; convert to
		// messages and application bytes.
		bundlesPerSec := res.GoodputMbps * 1e6 / 8 / float64(payload)
		msgsPerSec := bundlesPerSec * scale
		appMbps := msgsPerSec * bare * 8 / 1e6
		t.AddRow(mode, fmt.Sprintf("%.0f", msgsPerSec/1e3), fmt.Sprintf("%.0f", appMbps))
	}
	return t, nil
}

// ablationBuffer sweeps the switch's per-port buffer: the paper notes the
// acceleration benefit depends on modern switch buffering absorbing the
// overlap between consecutive senders.
func (s *Suite) ablationBuffer() (*Table, error) {
	t := &Table{
		ID:      "ablation-buffer",
		Title:   "Switch output-port buffer sweep, accelerated protocol at 800 Mbps on 1 GbE (daemon prototype)",
		Columns: []string{"port buf KiB", "agreed µs", "goodput Mbps", "switch drops", "retransmissions"},
		Notes:   []string{"small buffers drop the overlapped bursts the accelerated protocol creates, forcing recovery"},
	}
	bufs := []int{16, 32, 64, 128, 256, 512}
	if s.Quick {
		bufs = []int{16, 64, 512}
	}
	for _, kib := range bufs {
		fabric := simnet.GigabitFabric(8)
		fabric.PortBufBytes = kib * 1024
		cfg := RunConfig{
			Fabric:   fabric,
			Profile:  simproc.Daemon(),
			Protocol: AcceleratedRing,
			Windows:  Windows{Personal: 20, Global: 160, Accelerated: 15},
			Service:  evs.Agreed, PayloadBytes: 1350, OfferedMbps: 800,
			DrainGrace: 200 * simnet.Millisecond,
		}
		res, err := s.run(cfg, fmt.Sprintf("buf=%dKiB", kib))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", kib), us(res, 800), mbps(res.GoodputMbps),
			fmt.Sprintf("%d", res.SwitchDrops), fmt.Sprintf("%d", res.Retransmissions))
	}
	return t, nil
}
