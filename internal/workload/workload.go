// Package workload generates the benchmark traffic of the paper's
// evaluation: sending clients that inject fixed-size payloads at a fixed
// aggregate rate (for the latency-vs-throughput profiles) or as fast as
// flow control allows (for maximum-throughput measurements).
package workload

import (
	"math/rand"

	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

// Generator injects messages into simulated cluster nodes.
type Generator struct {
	// Sim is the cluster's scheduler.
	Sim *simnet.Sim
	// Rng drives Poisson arrival jitter. Required.
	Rng *rand.Rand
	// PayloadSize is the application payload per message (1350 or 8850 in
	// the paper). Must be at least 8 to carry the latency stamp.
	PayloadSize int
	// Service is the delivery level to request.
	Service evs.Service
}

// RunRate starts a Poisson stream of msgsPerSec submissions at the node,
// stopping at the given virtual time. Each payload is stamped with its
// injection time for latency measurement.
func (g *Generator) RunRate(node *simproc.Node, msgsPerSec float64, until simnet.Time) {
	if msgsPerSec <= 0 {
		return
	}
	meanGap := 1e9 / msgsPerSec // ns
	var tick func()
	tick = func() {
		if g.Sim.Now() >= until {
			return
		}
		payload := make([]byte, g.PayloadSize)
		simproc.StampPayload(payload, g.Sim.Now())
		node.Submit(payload, g.Service)
		gap := simnet.Time(g.Rng.ExpFloat64() * meanGap)
		if gap < 1 {
			gap = 1
		}
		g.Sim.After(gap, tick)
	}
	// Desynchronize senders with a random initial phase.
	g.Sim.After(simnet.Time(g.Rng.ExpFloat64()*meanGap), tick)
}

// RunSaturating keeps the node's client queue topped up so the protocol
// sends as fast as flow control allows: batch submissions are scheduled at
// the refill interval until the given virtual time.
func (g *Generator) RunSaturating(node *simproc.Node, batch int, every simnet.Time, until simnet.Time) {
	var tick func()
	tick = func() {
		if g.Sim.Now() >= until {
			return
		}
		for i := 0; i < batch; i++ {
			payload := make([]byte, g.PayloadSize)
			simproc.StampPayload(payload, g.Sim.Now())
			node.Submit(payload, g.Service)
		}
		g.Sim.After(every, tick)
	}
	g.Sim.After(0, tick)
}

// SpreadRate divides an aggregate payload goodput (bits/s) into a
// per-node message rate for the given payload size.
func SpreadRate(aggregateBps float64, payloadBytes, nodes int) float64 {
	if nodes == 0 || payloadBytes == 0 {
		return 0
	}
	return aggregateBps / 8 / float64(payloadBytes) / float64(nodes)
}
