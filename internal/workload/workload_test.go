package workload

import (
	"math"
	"math/rand"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/simnet"
	"accelring/internal/simproc"
)

func testCluster(t *testing.T) *simproc.Cluster {
	t.Helper()
	c, err := simproc.NewCluster(simproc.AcceleratedOptions(
		simnet.GigabitFabric(3), simproc.Library(), 20, 160, 15))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRunRateApproximatesRate(t *testing.T) {
	c := testCluster(t)
	g := &Generator{
		Sim:         c.Sim,
		Rng:         rand.New(rand.NewSource(7)),
		PayloadSize: 200,
		Service:     evs.Agreed,
	}
	const rate = 5000.0 // msgs/s
	horizon := 500 * simnet.Millisecond
	g.RunRate(c.Nodes[0], rate, horizon)
	c.Sim.RunUntil(horizon + 50*simnet.Millisecond)
	got := float64(c.Nodes[0].Stats().Submitted)
	want := rate * float64(horizon) / 1e9
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("submitted %v messages, want about %v", got, want)
	}
}

func TestRunRateZeroIsNoop(t *testing.T) {
	c := testCluster(t)
	g := &Generator{Sim: c.Sim, Rng: rand.New(rand.NewSource(1)), PayloadSize: 64, Service: evs.Agreed}
	g.RunRate(c.Nodes[0], 0, simnet.Second)
	c.Sim.RunUntil(10 * simnet.Millisecond)
	if c.Nodes[0].Stats().Submitted != 0 {
		t.Fatal("zero rate submitted messages")
	}
}

func TestRunSaturatingKeepsQueueFed(t *testing.T) {
	c := testCluster(t)
	g := &Generator{Sim: c.Sim, Rng: rand.New(rand.NewSource(1)), PayloadSize: 1350, Service: evs.Agreed}
	for _, n := range c.Nodes {
		g.RunSaturating(n, 20, 100*simnet.Microsecond, 50*simnet.Millisecond)
	}
	c.Sim.RunUntil(60 * simnet.Millisecond)
	// Every node must have sent a personal window's worth many times over.
	for i, n := range c.Nodes {
		if sent := n.Engine().Counters().Sent; sent < 200 {
			t.Fatalf("node %d sent only %d messages under saturation", i, sent)
		}
	}
}

func TestPayloadsAreStamped(t *testing.T) {
	c := testCluster(t)
	g := &Generator{Sim: c.Sim, Rng: rand.New(rand.NewSource(3)), PayloadSize: 64, Service: evs.Agreed}
	var stamps []simnet.Time
	c.SetDeliverHook(func(node simnet.NodeID, m evs.Message, at simnet.Time) {
		if node != 0 {
			return
		}
		ts := simproc.PayloadStamp(m.Payload)
		if ts < 0 || ts > at {
			t.Errorf("stamp %v outside [0, %v]", ts, at)
		}
		stamps = append(stamps, ts)
	})
	g.RunRate(c.Nodes[1], 2000, 50*simnet.Millisecond)
	c.Sim.RunUntil(100 * simnet.Millisecond)
	if len(stamps) == 0 {
		t.Fatal("no stamped deliveries")
	}
}

func TestSpreadRate(t *testing.T) {
	// 1 Gb/s of 1350-byte payloads over 8 nodes ≈ 11574 msgs/s/node.
	got := SpreadRate(1e9, 1350, 8)
	if math.Abs(got-11574) > 1 {
		t.Fatalf("SpreadRate = %v", got)
	}
	if SpreadRate(1e9, 0, 8) != 0 || SpreadRate(1e9, 1350, 0) != 0 {
		t.Fatal("degenerate SpreadRate not zero")
	}
}
