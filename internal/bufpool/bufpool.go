// Package bufpool provides size-classed, sync.Pool-backed frame buffers
// for the protocol's hot paths. At the paper's Figure 4/5 rates (tens of
// thousands of ~1350-byte frames per second) allocating a fresh buffer per
// datagram makes the garbage collector the per-packet processing cost the
// paper says dominates ring protocols; renting and recycling buffers keeps
// the steady-state receive and delayed-send paths allocation-free.
//
// # Ownership rules
//
// A buffer obtained from Get is owned by the caller. Ownership moves with
// the buffer: whoever holds a rented frame last is responsible for either
// calling Put exactly once or letting the garbage collector reclaim it.
// The cardinal rules:
//
//   - Never Put a buffer that anything else might still read: Put
//     transfers the memory to an unrelated future Get.
//   - Never Put the same buffer twice.
//   - Never use a buffer (or any slice aliasing it, e.g. a zero-copy
//     decoded payload) after Put.
//   - Put is always optional. Dropping a buffer on the floor only costs a
//     future pool miss; a wrong Put corrupts frames. When in doubt, don't.
//
// Put accepts any byte slice, including slices that did not come from Get:
// it files the buffer under the largest size class its capacity can serve
// (buffers smaller than the smallest class are discarded).
package bufpool

import (
	"sync"
	"sync/atomic"

	"accelring/internal/obs"
)

// classes are the rentable capacities. 2048 covers the paper's 1350-byte
// payload frames with headers; 66*1024 covers wire.MaxPayload plus
// headers (the transports' maximum datagram).
var classSizes = [...]int{256, 1024, 2048, 4096, 16384, 66 * 1024}

// MaxCap is the largest pooled capacity. Get(n) with n > MaxCap falls back
// to a plain allocation and Put discards such buffers.
const MaxCap = 66 * 1024

var pools [len(classSizes)]sync.Pool

// item carries a pooled buffer through sync.Pool. Pooling a bare []byte
// would box its header on every Put (an allocation on the hot path the
// zero-alloc gates measure); instead the headers themselves are pooled
// and cycle between itemPool and the class pools without allocating.
type item struct{ b []byte }

var itemPool = sync.Pool{New: func() any { return new(item) }}

// Stats is a point-in-time snapshot of pool activity. Gets = Hits + Misses
// + Oversize. A healthy steady state shows Hits tracking Gets and Puts
// tracking Gets for the frame classes that are recycled (token frames);
// data frames are retained by the ordering engine until stable, so their
// buffers return through the garbage collector instead of Put.
type Stats struct {
	// Gets counts Get calls.
	Gets uint64 `json:"gets"`
	// Hits counts Gets served from a pool.
	Hits uint64 `json:"hits"`
	// Misses counts Gets that had to allocate.
	Misses uint64 `json:"misses"`
	// Oversize counts Gets beyond MaxCap (always allocate) and Puts of
	// buffers no class can serve.
	Oversize uint64 `json:"oversize"`
	// Puts counts buffers returned to a pool.
	Puts uint64 `json:"puts"`
}

var gets, hits, misses, oversize, puts atomic.Uint64

// classFor returns the index of the smallest class with capacity >= n, or
// -1 if n exceeds every class.
func classFor(n int) int {
	for i, s := range classSizes {
		if n <= s {
			return i
		}
	}
	return -1
}

// putClassFor returns the index of the largest class with capacity <= c,
// or -1 if c is smaller than every class.
func putClassFor(c int) int {
	for i := len(classSizes) - 1; i >= 0; i-- {
		if c >= classSizes[i] {
			return i
		}
	}
	return -1
}

// Get returns a buffer with len n. Its contents are undefined; the caller
// owns it until Put (or abandonment).
func Get(n int) []byte {
	gets.Add(1)
	ci := classFor(n)
	if ci < 0 {
		oversize.Add(1)
		return make([]byte, n)
	}
	if v := pools[ci].Get(); v != nil {
		hits.Add(1)
		it := v.(*item)
		b := it.b
		it.b = nil
		itemPool.Put(it)
		return b[:n]
	}
	misses.Add(1)
	return make([]byte, n, classSizes[ci])
}

// Put returns a buffer to the pool serving the largest class its capacity
// fits. Buffers below the smallest class (or nil) are discarded. See the
// package comment for the ownership rules; in particular, never Put a
// buffer anything else might still reference.
func Put(b []byte) {
	ci := putClassFor(cap(b))
	if ci < 0 {
		if cap(b) > 0 {
			oversize.Add(1)
		}
		return
	}
	puts.Add(1)
	it := itemPool.Get().(*item)
	it.b = b[:0]
	pools[ci].Put(it)
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	return Stats{
		Gets:     gets.Load(),
		Hits:     hits.Load(),
		Misses:   misses.Load(),
		Oversize: oversize.Load(),
		Puts:     puts.Load(),
	}
}

// PublishTo exposes the pool counters in reg under "bufpool": a live
// snapshot taken on every registry read, so /debug/vars always shows
// current hit/miss values. No-op on a nil registry; safe to call more than
// once (later calls replace the published function with an identical one).
func PublishTo(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Publish("bufpool", func() any { return Snapshot() })
}
