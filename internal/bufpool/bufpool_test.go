package bufpool

import (
	"sync"
	"testing"
)

func TestGetLenAndClassCap(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{0, 256}, {1, 256}, {256, 256}, {257, 1024},
		{1350, 2048}, {2048, 2048}, {4000, 4096}, {5000, 16384},
		{16385, 66 * 1024}, {66 * 1024, 66 * 1024},
	}
	for _, c := range cases {
		b := Get(c.n)
		if len(b) != c.n {
			t.Fatalf("Get(%d): len %d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Fatalf("Get(%d): cap %d, want %d", c.n, cap(b), c.wantCap)
		}
		Put(b)
	}
}

func TestOversize(t *testing.T) {
	before := Snapshot()
	b := Get(MaxCap + 1)
	if len(b) != MaxCap+1 {
		t.Fatalf("len %d", len(b))
	}
	Put(b) // cap > MaxCap still files under the largest class it can serve
	after := Snapshot()
	if after.Oversize != before.Oversize+1 {
		t.Fatalf("oversize %d -> %d, want +1 (get only)", before.Oversize, after.Oversize)
	}
}

func TestPutForeignAndTinyBuffers(t *testing.T) {
	Put(nil)              // no-op
	Put(make([]byte, 10)) // below the smallest class: discarded
	// A foreign 3000-cap buffer serves the 2048 class.
	Put(make([]byte, 0, 3000))
	b := Get(2048)
	if cap(b) < 2048 {
		t.Fatalf("cap %d", cap(b))
	}
	Put(b)
}

func TestRecycleRoundTrip(t *testing.T) {
	// A put buffer comes back on the next same-class get (modulo the
	// runtime occasionally dropping pool entries); only assert contents
	// and stats stay sane.
	before := Snapshot()
	b := Get(1350)
	for i := range b {
		b[i] = 0xAB
	}
	Put(b)
	c := Get(1350)
	if len(c) != 1350 {
		t.Fatalf("len %d", len(c))
	}
	Put(c)
	after := Snapshot()
	if after.Gets < before.Gets+2 || after.Puts < before.Puts+2 {
		t.Fatalf("stats did not advance: %+v -> %+v", before, after)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := 64 + (g*977+i*131)%(4*1024)
				b := Get(n)
				if len(b) != n {
					panic("bad len")
				}
				b[0] = byte(i)
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}
