package session

import (
	"encoding/binary"
	"errors"
	"io"

	"accelring/internal/wire"
)

// ErrAuth reports a frame whose authentication tag did not verify — a
// forged or corrupted frame, or a key mismatch between client and daemon.
var ErrAuth = errors.New("session: frame failed authentication")

// Codec frames session traffic on one connection, optionally
// authenticating every frame with a truncated HMAC-SHA256 tag (the same
// construction the ring's wire transport uses, see wire.Auth). The zero
// Codec is the plain protocol; NewCodec with a key appends a wire.MacLen
// tag to each frame body and rejects inbound frames whose tag does not
// verify.
//
// The tag sits inside the length prefix, so a keyed and an unkeyed
// endpoint detect the mismatch on the first frame instead of desyncing
// the stream.
type Codec struct {
	auth *wire.Auth
}

// NewCodec returns a codec for key; an empty key yields the plain codec.
func NewCodec(key []byte) Codec { return Codec{auth: wire.NewAuth(key)} }

// Keyed reports whether the codec authenticates frames.
func (c Codec) Keyed() bool { return c.auth != nil }

// WriteFrame writes one length-prefixed (and, when keyed, authenticated)
// frame to w as a single Write call.
func (c Codec) WriteFrame(w io.Writer, f Frame) error {
	if c.auth == nil {
		return WriteFrame(w, f)
	}
	body, err := Encode(f)
	if err != nil {
		return err
	}
	buf := make([]byte, 4, 4+len(body)+wire.MacLen)
	buf = c.auth.AppendMAC(buf, body)
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame from r, verifying the tag when keyed.
func (c Codec) ReadFrame(r io.Reader) (Frame, error) {
	if c.auth == nil {
		return ReadFrame(r)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame+wire.MacLen {
		return nil, ErrTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	plain, ok := c.auth.Verify(body)
	if !ok {
		return nil, ErrAuth
	}
	return Decode(plain)
}
