package session

import (
	"encoding/binary"
	"errors"
	"io"

	"accelring/internal/bufpool"
	"accelring/internal/wire"
)

// ErrAuth reports a frame whose authentication tag did not verify — a
// forged or corrupted frame, or a key mismatch between client and daemon.
var ErrAuth = errors.New("session: frame failed authentication")

// Codec frames session traffic on one connection, optionally
// authenticating every frame with a truncated HMAC-SHA256 tag (the same
// construction the ring's wire transport uses, see wire.Auth). The zero
// Codec is the plain protocol; NewCodec with a key appends a wire.MacLen
// tag to each frame body and rejects inbound frames whose tag does not
// verify.
//
// The tag sits inside the length prefix, so a keyed and an unkeyed
// endpoint detect the mismatch on the first frame instead of desyncing
// the stream.
type Codec struct {
	auth *wire.Auth
}

// NewCodec returns a codec for key; an empty key yields the plain codec.
func NewCodec(key []byte) Codec { return Codec{auth: wire.NewAuth(key)} }

// Keyed reports whether the codec authenticates frames.
func (c Codec) Keyed() bool { return c.auth != nil }

// Auth exposes the codec's authenticator (nil when unkeyed), for writers
// that assemble frames from discontiguous parts and need to compute the
// tag themselves (wire.Auth.SumParts).
func (c Codec) Auth() *wire.Auth { return c.auth }

// Overhead is the per-frame byte cost of authentication: wire.MacLen when
// keyed, zero otherwise.
func (c Codec) Overhead() int { return c.auth.Overhead() }

// WriteFrame writes one length-prefixed (and, when keyed, authenticated)
// frame to w as a single Write call, assembled in one pooled buffer.
func (c Codec) WriteFrame(w io.Writer, f Frame) error {
	if c.auth == nil {
		return WriteFrame(w, f)
	}
	buf := bufpool.Get(writeScratch)[:4]
	b, err := AppendEncode(buf, f)
	if err != nil {
		bufpool.Put(buf)
		return err
	}
	b = c.auth.SumParts(b, b[4:])
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err = w.Write(b)
	bufpool.Put(b)
	return err
}

// ReadFrame reads one frame from r, verifying the tag when keyed. The
// frame owns a fresh backing; use ReadFramePooled on hot paths.
func (c Codec) ReadFrame(r io.Reader) (Frame, error) {
	if c.auth == nil {
		return ReadFrame(r)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame+wire.MacLen {
		return nil, ErrTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	plain, ok := c.auth.Verify(body)
	if !ok {
		return nil, ErrAuth
	}
	return Decode(plain)
}

// ReadFramePooled reads one frame from r into a bufpool buffer, verifying
// the tag when keyed. Like the package-level ReadFramePooled, the decoded
// frame's zero-copy fields alias the returned buffer; the caller owns it
// under the retained-or-Put convention.
func (c Codec) ReadFramePooled(r io.Reader) (Frame, []byte, error) {
	if c.auth == nil {
		return ReadFramePooled(r)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame+wire.MacLen {
		return nil, nil, ErrTooLarge
	}
	body := bufpool.Get(int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		bufpool.Put(body)
		return nil, nil, err
	}
	plain, ok := c.auth.Verify(body)
	if !ok {
		bufpool.Put(body)
		return nil, nil, ErrAuth
	}
	f, err := Decode(plain)
	if err != nil {
		bufpool.Put(body)
		return nil, nil, err
	}
	return f, body, nil
}
