package session

import (
	"sync"
	"sync/atomic"

	"accelring/internal/bufpool"
)

// Shared is a refcounted, pool-backed, pre-encoded frame body shared by
// several sessions' outboxes: when a daemon fans one delivered group
// message out to N member sessions, the inner frame (a Message, most of
// the time) is encoded exactly once here and every outbox queues a
// reference instead of re-encoding per subscriber. The per-session parts
// that differ — the length prefix, the Seqd sequence number, and (keyed)
// the MAC — are tiny and live in per-writer scratch, so the payload bytes
// are written to every subscriber straight from this one buffer.
//
// Lifecycle: NewShared returns the body with one reference owned by the
// creator. Each outbox that queues the body takes its own reference
// (Ref) and releases it (Unref) when the frame finally leaves its
// retained resume-replay window — on ack-trim, window eviction, resume
// fast-forward, or session shutdown — never merely on write, because a
// reconnecting client may need the bytes replayed. The creator drops its
// reference after the fan-out loop. The last Unref returns the buffer to
// bufpool and the Shared itself to an internal pool.
//
// The encoded bytes are immutable for the Shared's whole life; Bytes
// must not be written to or retained past the caller's reference.
type Shared struct {
	buf  []byte
	refs atomic.Int32
}

var sharedPool = sync.Pool{New: func() any { return new(Shared) }}

// sharedLive counts Shareds whose buffer has not been released yet. It
// exists for leak gates: after any amount of fan-out, churn, and
// reconnect, a quiesced daemon must settle back to the value observed
// before (every reference eventually dropped).
var sharedLive atomic.Int64

// SharedLive returns the number of live (unreleased) shared buffers.
func SharedLive() int64 { return sharedLive.Load() }

// sharedEncodeScratch is the rent size for a shared body when the frame's
// encoded size is not known up front; bodies that outgrow it just grow
// past the pooled backing (append) and are recycled under the larger
// capacity class on release.
const sharedEncodeScratch = 2048

// NewShared encodes f once into a pooled buffer and returns it with one
// reference (the creator's). f must be a deliverable frame, never a Seqd:
// the per-session Seqd wrapper is what stays out of the shared bytes.
func NewShared(f Frame) (*Shared, error) {
	if _, nested := f.(Seqd); nested {
		return nil, ErrBadFrame
	}
	hint := sharedEncodeScratch
	if m, ok := f.(Message); ok && len(m.Payload) > hint-64 {
		hint = len(m.Payload) + 64
	}
	buf := bufpool.Get(hint)[:0]
	b, err := AppendEncode(buf, f)
	if err != nil {
		bufpool.Put(buf)
		return nil, err
	}
	s := sharedPool.Get().(*Shared)
	s.buf = b
	s.refs.Store(1)
	sharedLive.Add(1)
	return s, nil
}

// Bytes returns the encoded frame body (no length prefix, no Seqd
// wrapper, no MAC). Read-only; valid only while the caller holds a
// reference.
func (s *Shared) Bytes() []byte { return s.buf }

// Len returns the encoded body length.
func (s *Shared) Len() int { return len(s.buf) }

// Ref takes one additional reference.
func (s *Shared) Ref() { s.refs.Add(1) }

// Unref drops one reference; the last one returns the buffer to bufpool
// and recycles the Shared.
func (s *Shared) Unref() {
	if n := s.refs.Add(-1); n == 0 {
		b := s.buf
		s.buf = nil
		sharedLive.Add(-1)
		bufpool.Put(b)
		sharedPool.Put(s)
	} else if n < 0 {
		panic("session: Shared over-released")
	}
}
