package session

import (
	"bytes"
	"errors"
	"net"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/group"
	"accelring/internal/wire"
)

// TestResumeFrameRoundTrips covers the reconnect/backpressure frames
// added for daemon hardening.
func TestResumeFrameRoundTrips(t *testing.T) {
	frames := []Frame{
		Welcome{Client: group.ClientID{Daemon: 3, Local: 9}, Token: 0xdeadbeefcafe, Resumed: true},
		Resume{Client: group.ClientID{Daemon: 2, Local: 7}, Token: 42, LastSeq: 1<<40 + 5},
		Resume{},
		Ack{Seq: 99},
		Ack{},
		Bye{},
		Detach{Reason: "drain", CanResume: true},
		Detach{},
		Throttle{On: true, Queued: 12345},
		Throttle{},
		Seqd{Seq: 7, Frame: Message{Sender: group.ClientID{Daemon: 1, Local: 2},
			Service: evs.Agreed, Groups: []string{"g"}, Payload: []byte("m")}},
		Seqd{Seq: 1, Frame: View{Group: "g", Members: []group.ClientID{{Daemon: 1, Local: 1}}}},
		Seqd{Seq: 2, Frame: Error{Code: CodeNoRecipient, Msg: "gone"}},
		Challenge{Nonce: [ChallengeNonceLen]byte{1, 2, 3, 15: 16}},
		Challenge{},
		ChallengeAck{Nonce: [ChallengeNonceLen]byte{0xff, 15: 0xee}},
		ChallengeAck{},
	}
	for _, in := range frames {
		enc, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%#v): %v", in, err)
		}
		out, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%#v): %v", in, err)
		}
		ia, aok := in.(Seqd)
		oa, bok := out.(Seqd)
		if aok && bok {
			if ia.Seq != oa.Seq || !framesEqual(ia.Frame, oa.Frame) {
				t.Fatalf("Seqd mismatch:\n got %#v\nwant %#v", out, in)
			}
			continue
		}
		if !framesEqual(in, out) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", out, in)
		}
	}
}

// TestResumeFrameStrictness: one valid encoding per frame — truncated,
// over-length, and non-canonical variants are all rejected.
func TestResumeFrameStrictness(t *testing.T) {
	canonical := map[string]Frame{
		"welcome":   Welcome{Client: group.ClientID{Daemon: 1, Local: 2}, Token: 3},
		"resume":    Resume{Client: group.ClientID{Daemon: 1, Local: 2}, Token: 3, LastSeq: 4},
		"ack":       Ack{Seq: 9},
		"bye":       Bye{},
		"detach":    Detach{Reason: "drain", CanResume: true},
		"throttle":  Throttle{On: true, Queued: 8},
		"seqd":      Seqd{Seq: 5, Frame: Ack{Seq: 1}},
		"challenge": Challenge{Nonce: [ChallengeNonceLen]byte{9, 15: 9}},
		"chalack":   ChallengeAck{Nonce: [ChallengeNonceLen]byte{4, 15: 4}},
	}
	for name, f := range canonical {
		enc, err := Encode(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Every proper prefix is truncated.
		for i := 0; i < len(enc); i++ {
			if _, err := Decode(enc[:i]); err == nil {
				t.Errorf("%s: decoded %d-byte prefix", name, i)
			}
		}
		// Trailing bytes are over-length.
		if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
			t.Errorf("%s: decoded frame with trailing byte", name)
		}
	}

	// Booleans must be exactly 0 or 1.
	enc, _ := Encode(Detach{Reason: "x", CanResume: true})
	enc[len(enc)-1] = 2
	if _, err := Decode(enc); !errors.Is(err, ErrBadFrame) {
		t.Errorf("Detach with bool=2: err = %v, want ErrBadFrame", err)
	}
	enc, _ = Encode(Throttle{On: true})
	enc[1] = 0xFF
	if _, err := Decode(enc); !errors.Is(err, ErrBadFrame) {
		t.Errorf("Throttle with bool=255: err = %v, want ErrBadFrame", err)
	}

	// Nested Seqd is rejected on both paths.
	if _, err := Encode(Seqd{Seq: 1, Frame: Seqd{Seq: 2, Frame: Bye{}}}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("Encode(nested Seqd): err = %v, want ErrBadFrame", err)
	}
	if _, err := Encode(Seqd{Seq: 1}); !errors.Is(err, ErrBadFrame) {
		t.Errorf("Encode(empty Seqd): err = %v, want ErrBadFrame", err)
	}
	nested := []byte{byte(KindSeqd), 0, 0, 0, 0, 0, 0, 0, 1, byte(KindSeqd)}
	if _, err := Decode(nested); !errors.Is(err, ErrBadFrame) {
		t.Errorf("Decode(nested Seqd): err = %v, want ErrBadFrame", err)
	}
}

func TestNewErrorCodeMapping(t *testing.T) {
	for _, tc := range []struct {
		code ErrorCode
		want error
	}{
		{CodeNoRecipient, ErrNoRecipient},
		{CodeDraining, ErrDraining},
		{CodeSessionUnknown, ErrSessionUnknown},
	} {
		if err := (Error{Code: tc.code}).Err(); !errors.Is(err, tc.want) {
			t.Errorf("code %d: Err() = %v, want %v", tc.code, err, tc.want)
		}
	}
}

func TestCodecAuthenticatedRoundTrip(t *testing.T) {
	key := []byte("session-key")
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ca, cb := NewCodec(key), NewCodec(key)
	if !ca.Keyed() {
		t.Fatal("keyed codec reports unkeyed")
	}
	want := Seqd{Seq: 3, Frame: Message{Sender: group.ClientID{Daemon: 1, Local: 1},
		Service: evs.Agreed, Groups: []string{"g"}, Payload: []byte("hi")}}
	errCh := make(chan error, 1)
	go func() { errCh <- ca.WriteFrame(a, want) }()
	got, err := cb.ReadFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	s, ok := got.(Seqd)
	if !ok || s.Seq != 3 || !framesEqual(s.Frame, want.Frame) {
		t.Fatalf("got %#v", got)
	}
}

func TestCodecRejectsForgedFrame(t *testing.T) {
	key := []byte("session-key")
	// Unkeyed writer vs keyed reader: frame has no tag.
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go Codec{}.WriteFrame(a, Ack{Seq: 1})
	if _, err := NewCodec(key).ReadFrame(b); !errors.Is(err, ErrAuth) {
		t.Fatalf("untagged frame: err = %v, want ErrAuth", err)
	}

	// Keyed writer with the wrong key.
	a2, b2 := net.Pipe()
	defer a2.Close()
	defer b2.Close()
	go NewCodec([]byte("other-key")).WriteFrame(a2, Ack{Seq: 1})
	if _, err := NewCodec(key).ReadFrame(b2); !errors.Is(err, ErrAuth) {
		t.Fatalf("wrong-key frame: err = %v, want ErrAuth", err)
	}

	// Tampered payload under the right key.
	enc, err := Encode(Ack{Seq: 7})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := NewCodec(key).WriteFrame(&buf, Ack{Seq: 7}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4+len(enc)-1] ^= 1 // flip a payload bit inside the tag's coverage
	a3, b3 := net.Pipe()
	defer a3.Close()
	defer b3.Close()
	go a3.Write(raw)
	if _, err := NewCodec(key).ReadFrame(b3); !errors.Is(err, ErrAuth) {
		t.Fatalf("tampered frame: err = %v, want ErrAuth", err)
	}
}

func TestCodecLengthIncludesTag(t *testing.T) {
	var plain, keyed bytes.Buffer
	if err := (Codec{}).WriteFrame(&plain, Ack{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := NewCodec([]byte("k")).WriteFrame(&keyed, Ack{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if keyed.Len() != plain.Len()+wire.MacLen {
		t.Fatalf("keyed frame = %d bytes, want %d", keyed.Len(), plain.Len()+wire.MacLen)
	}
}
