package session

import (
	"bytes"
	"io"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/group"
)

func sharedTestMsg() Message {
	return Message{
		Sender:  group.ClientID{Daemon: 3, Local: 7},
		Service: evs.Agreed,
		Groups:  []string{"alpha", "beta"},
		Payload: []byte("encode-once payload"),
	}
}

// TestSharedEncodesOnce: the shared body is byte-identical to Encode's
// output, and the refcount lifecycle settles the live gauge back down.
func TestSharedEncodesOnce(t *testing.T) {
	msg := sharedTestMsg()
	want, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	before := SharedLive()
	sh, err := NewShared(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sh.Bytes(), want) {
		t.Fatalf("shared body differs from Encode:\n  got  %x\n  want %x", sh.Bytes(), want)
	}
	if sh.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", sh.Len(), len(want))
	}
	if live := SharedLive(); live != before+1 {
		t.Fatalf("SharedLive = %d after NewShared, want %d", live, before+1)
	}

	// Two extra holders (outboxes), then everyone releases.
	sh.Ref()
	sh.Ref()
	sh.Unref() // creator
	sh.Unref()
	if live := SharedLive(); live != before+1 {
		t.Fatalf("SharedLive = %d with one holder left, want %d", live, before+1)
	}
	sh.Unref() // last holder frees
	if live := SharedLive(); live != before {
		t.Fatalf("SharedLive = %d after last Unref, want %d", live, before)
	}
}

// TestSharedRejectsSeqd: the per-session Seqd wrapper must never end up
// inside the shared bytes.
func TestSharedRejectsSeqd(t *testing.T) {
	if _, err := NewShared(Seqd{Seq: 1, Frame: sharedTestMsg()}); err == nil {
		t.Fatal("NewShared accepted a Seqd frame")
	}
}

// TestSharedOverReleasePanics: a refcount underflow is a programming
// error loud enough to panic, not a silent double-free.
func TestSharedOverReleasePanics(t *testing.T) {
	sh, err := NewShared(Bye{})
	if err != nil {
		t.Fatal(err)
	}
	sh.Unref()
	defer func() {
		if recover() == nil {
			t.Fatal("extra Unref did not panic")
		}
	}()
	sh.Unref()
}

// TestSharedLargePayload: a payload past the default scratch class still
// encodes whole (the pool rent sizes up from the payload length).
func TestSharedLargePayload(t *testing.T) {
	msg := Message{Service: evs.Agreed, Groups: []string{"g"}, Payload: bytes.Repeat([]byte{0xAB}, 48<<10)}
	want, err := Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShared(msg)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Unref()
	if !bytes.Equal(sh.Bytes(), want) {
		t.Fatal("large shared body differs from Encode")
	}
}

// countingWriter counts Write calls: the coalesced WriteFrame must issue
// exactly one syscall-shaped write per frame (no header/body split).
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func TestWriteFrameSingleWrite(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codec Codec
	}{
		{"plain", Codec{}},
		{"keyed", NewCodec([]byte("shared-secret"))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var w countingWriter
			frames := []Frame{
				sharedTestMsg(),
				Seqd{Seq: 42, Frame: sharedTestMsg()},
				Throttle{On: true, Queued: 9},
			}
			for _, f := range frames {
				if err := tc.codec.WriteFrame(&w, f); err != nil {
					t.Fatal(err)
				}
			}
			if w.writes != len(frames) {
				t.Fatalf("%d frames took %d Write calls, want one each", len(frames), w.writes)
			}
			// And the stream reads back intact.
			r := bytes.NewReader(w.buf.Bytes())
			for i := range frames {
				got, err := tc.codec.ReadFrame(r)
				if err != nil {
					t.Fatalf("frame %d: %v", i, err)
				}
				if _, isSeqd := frames[i].(Seqd); isSeqd {
					if s, ok := got.(Seqd); !ok || s.Seq != 42 {
						t.Fatalf("frame %d decoded as %#v", i, got)
					}
				}
			}
		})
	}
}

// TestReadFramePooledEquivalence: the pooled read path decodes exactly
// what ReadFrame does, for both codecs, and the returned buffer backs the
// zero-copy fields.
func TestReadFramePooledEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		codec Codec
	}{
		{"plain", Codec{}},
		{"keyed", NewCodec([]byte("shared-secret"))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			msg := sharedTestMsg()
			if err := tc.codec.WriteFrame(&buf, Seqd{Seq: 5, Frame: msg}); err != nil {
				t.Fatal(err)
			}
			f, pb, err := tc.codec.ReadFramePooled(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if pb == nil {
				t.Fatal("pooled read returned no buffer")
			}
			s, ok := f.(Seqd)
			if !ok || s.Seq != 5 {
				t.Fatalf("decoded %#v, want Seqd{5}", f)
			}
			m, ok := s.Frame.(Message)
			if !ok || !bytes.Equal(m.Payload, msg.Payload) || len(m.Groups) != 2 {
				t.Fatalf("inner frame %#v", s.Frame)
			}
			// Truncated stream errors cleanly.
			if _, _, err := tc.codec.ReadFramePooled(bytes.NewReader(buf.Bytes()[:6])); err == nil {
				t.Fatal("truncated pooled read did not error")
			}
			if _, _, err := tc.codec.ReadFramePooled(io.MultiReader()); err == nil {
				t.Fatal("empty pooled read did not error")
			}
		})
	}
}

// TestAppendEncodeOffset: AppendEncode respects existing bytes in dst and
// enforces MaxFrame on the appended frame alone.
func TestAppendEncodeOffset(t *testing.T) {
	prefix := []byte{1, 2, 3, 4}
	b, err := AppendEncode(append([]byte(nil), prefix...), sharedTestMsg())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b[:4], prefix) {
		t.Fatal("AppendEncode clobbered the prefix")
	}
	want, _ := Encode(sharedTestMsg())
	if !bytes.Equal(b[4:], want) {
		t.Fatal("AppendEncode body differs from Encode")
	}
}
