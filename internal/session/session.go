// Package session defines the client-daemon protocol: length-prefixed
// binary frames over a stream connection (Unix socket or TCP), mirroring
// Spread's client library model. Clients connect to a local daemon, join
// and leave named groups, send (multi-group) multicasts with a chosen
// service level, and receive ordered messages and group view updates.
package session

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"accelring/internal/bufpool"
	"accelring/internal/evs"
	"accelring/internal/group"
)

// MaxFrame bounds one session frame (headers + payload).
const MaxFrame = 1 << 20

// MaxClientName bounds the client's private name.
const MaxClientName = 64

// Kind discriminates session frames.
type Kind uint8

const (
	// KindConnect (client->daemon) opens a session.
	KindConnect Kind = iota + 1
	// KindJoin (client->daemon) joins a group.
	KindJoin
	// KindLeave (client->daemon) leaves a group.
	KindLeave
	// KindSend (client->daemon) multicasts to one or more groups.
	KindSend
	// KindWelcome (daemon->client) acknowledges Connect with the ID.
	KindWelcome
	// KindMessage (daemon->client) delivers an ordered message.
	KindMessage
	// KindView (daemon->client) announces a group's agreed membership.
	KindView
	// KindError (daemon->client) reports a request failure.
	KindError
	// KindPrivate (client->daemon) sends a point-to-point message to one
	// client, ordered like everything else. Delivery uses KindMessage
	// with no groups.
	KindPrivate
	// KindResume (client->daemon) reopens an existing session after a
	// connection loss, identified by client ID and resume token.
	KindResume
	// KindAck (client->daemon) acknowledges Seqd deliveries up to a
	// sequence number, letting the daemon prune its replay window.
	KindAck
	// KindBye (client->daemon) announces a clean close: the daemon drops
	// the session immediately instead of holding it for resume.
	KindBye
	// KindDetach (daemon->client) announces the daemon is releasing the
	// connection (e.g. a graceful drain); CanResume says whether the
	// session may be picked up again with Resume.
	KindDetach
	// KindThrottle (daemon->client) reports a backpressure tier change:
	// the client should pace itself while On, resume at full rate after
	// an Off.
	KindThrottle
	// KindSeqd (daemon->client) wraps one delivery frame with the
	// session's delivery sequence number for resume/ack bookkeeping.
	KindSeqd
	// KindChallenge (daemon->client) demands fresh proof of key
	// possession before a keyed Resume is honored: the nonce must come
	// back in a ChallengeAck.
	KindChallenge
	// KindChallengeAck (client->daemon) echoes a Challenge nonce; its
	// frame MAC covers the nonce, defeating handshake replay.
	KindChallengeAck
)

// Errors shared by codec users.
var (
	ErrTruncated   = errors.New("session: truncated frame")
	ErrTooLarge    = errors.New("session: frame exceeds limit")
	ErrBadFrame    = errors.New("session: malformed frame")
	ErrNameTooLong = fmt.Errorf("session: client name exceeds %d bytes", MaxClientName)
)

// ErrorCode classifies a daemon-reported failure so the client library can
// map Error frames back to typed errors (errors.Is/As).
type ErrorCode uint8

const (
	// CodeGeneric is an unclassified failure; only Msg describes it.
	CodeGeneric ErrorCode = iota
	// CodeInvalidService rejects an unknown service level.
	CodeInvalidService
	// CodeNotMember rejects an operation requiring group membership.
	CodeNotMember
	// CodeNotReady means the daemon's ring has not formed yet.
	CodeNotReady
	// CodeMembershipChanged means the operation was interrupted by a
	// daemon membership change; OldView/NewView carry the transition.
	CodeMembershipChanged
	// CodeBadRequest rejects a malformed or unexpected request frame.
	CodeBadRequest
	// CodeNoRecipient rejects a Private whose target client is gone.
	// Non-fatal: the session stays up.
	CodeNoRecipient
	// CodeDraining rejects a Connect while the daemon is draining.
	CodeDraining
	// CodeSessionUnknown rejects a Resume the daemon cannot honor: no
	// such session, wrong token, or the replay window has moved past the
	// client's LastSeq.
	CodeSessionUnknown
)

// Connect opens a session.
type Connect struct {
	// Name is the client's private name (diagnostics only).
	Name string
}

// Join and Leave address one group.
type Join struct{ Group string }

// Leave mirrors Join.
type Leave struct{ Group string }

// Send multicasts Payload to the members of Groups with the given service.
type Send struct {
	Service evs.Service
	Groups  []string
	Payload []byte
}

// Welcome acknowledges a Connect or a Resume.
type Welcome struct {
	Client group.ClientID
	// Token is the session's resume secret: presenting it with Resume
	// after a connection loss reattaches to the same session.
	Token uint64
	// Resumed is set when this Welcome answers a Resume rather than a
	// Connect.
	Resumed bool
}

// Message is an ordered delivery.
type Message struct {
	Sender  group.ClientID
	Service evs.Service
	Groups  []string
	Payload []byte
	// Seq is the ring sequence number that ordered this delivery (0 from
	// daemons predating it). It is the cross-node span key of message
	// tracing: a client that knows it can stamp client-side lifecycle
	// stages onto the same span the daemons record. Distinct from the
	// per-session delivery sequence carried by Seqd.
	Seq uint64
}

// View is a group's agreed membership after a change.
type View struct {
	Group   string
	Members []group.ClientID
}

// Error reports a failed request. OldView/NewView are carried only for
// CodeMembershipChanged.
type Error struct {
	Code ErrorCode
	Msg  string
	// OldView and NewView describe a membership transition
	// (CodeMembershipChanged only). NewView may be zero while the new
	// configuration is still forming.
	OldView, NewView evs.ViewID
}

// Sentinel errors the daemon reports through Error frames; Err maps codes
// back to them so callers can branch with errors.Is/As.
var (
	ErrInvalidService = errors.New("session: invalid service level")
	ErrNotReady       = errors.New("session: ring not operational yet")
	ErrNoRecipient    = errors.New("session: private target disconnected")
	ErrDraining       = errors.New("session: daemon is draining")
	ErrSessionUnknown = errors.New("session: cannot resume session")
)

// Err converts the frame into a typed error: sentinels for the fixed
// codes, *evs.MembershipChangedError for membership transitions, and a
// plain error wrapping Msg otherwise.
func (e Error) Err() error {
	switch e.Code {
	case CodeInvalidService:
		return ErrInvalidService
	case CodeNotReady:
		return ErrNotReady
	case CodeNotMember:
		return group.ErrNotMember
	case CodeMembershipChanged:
		return &evs.MembershipChangedError{OldView: e.OldView, NewView: e.NewView}
	case CodeNoRecipient:
		return ErrNoRecipient
	case CodeDraining:
		return ErrDraining
	case CodeSessionUnknown:
		return ErrSessionUnknown
	default:
		return errors.New(e.Msg)
	}
}

// Private sends Payload to exactly one client, in total order.
type Private struct {
	To      group.ClientID
	Service evs.Service
	Payload []byte
}

// Resume reopens the session identified by Client after a connection
// loss. Token must match the secret from the original Welcome; LastSeq
// is the highest Seqd sequence the client has processed, so the daemon
// replays exactly the frames after it.
type Resume struct {
	Client  group.ClientID
	Token   uint64
	LastSeq uint64
}

// Ack acknowledges every Seqd delivery with sequence <= Seq.
type Ack struct{ Seq uint64 }

// ChallengeNonceLen is the size of a resume-challenge nonce.
const ChallengeNonceLen = 16

// Challenge is the daemon's freshness probe during a keyed Resume
// handshake: the per-frame HMAC alone cannot stop an observer from
// replaying a recorded Resume verbatim, so the daemon issues a random
// nonce the client must echo. Only sent on keyed sessions.
type Challenge struct{ Nonce [ChallengeNonceLen]byte }

// ChallengeAck answers a Challenge by echoing its nonce; the frame's
// MAC then covers a value no previously recorded stream contains.
type ChallengeAck struct{ Nonce [ChallengeNonceLen]byte }

// Bye announces a clean client close (no resume intended).
type Bye struct{}

// Detach tells the client the daemon is releasing the connection.
type Detach struct {
	// Reason is a short diagnostic tag ("drain", ...).
	Reason string
	// CanResume says whether Resume will be honored afterwards (by this
	// daemon after a restart, or by a peer).
	CanResume bool
}

// Throttle reports a backpressure tier change for this session. While On
// the client should pace submissions; Queued is the daemon-side queue
// depth at the transition.
type Throttle struct {
	On     bool
	Queued uint32
}

// Seqd wraps one daemon->client delivery with the session's delivery
// sequence number. Frame must be a deliverable kind, never another Seqd.
type Seqd struct {
	Seq   uint64
	Frame Frame
}

// Frame is any session frame.
type Frame interface{ kind() Kind }

func (Connect) kind() Kind { return KindConnect }
func (Join) kind() Kind    { return KindJoin }
func (Leave) kind() Kind   { return KindLeave }
func (Send) kind() Kind    { return KindSend }
func (Welcome) kind() Kind { return KindWelcome }
func (Message) kind() Kind { return KindMessage }
func (View) kind() Kind    { return KindView }
func (Error) kind() Kind   { return KindError }
func (Private) kind() Kind  { return KindPrivate }
func (Resume) kind() Kind   { return KindResume }
func (Ack) kind() Kind      { return KindAck }
func (Bye) kind() Kind      { return KindBye }
func (Detach) kind() Kind   { return KindDetach }
func (Throttle) kind() Kind { return KindThrottle }
func (Seqd) kind() Kind     { return KindSeqd }

func (Challenge) kind() Kind    { return KindChallenge }
func (ChallengeAck) kind() Kind { return KindChallengeAck }

func appendString8(b []byte, s string) []byte {
	b = append(b, byte(len(s)))
	return append(b, s...)
}

func appendGroups(b []byte, groups []string) []byte {
	b = append(b, byte(len(groups)))
	for _, g := range groups {
		b = appendString8(b, g)
	}
	return b
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func appendClientID(b []byte, c group.ClientID) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(c.Daemon))
	return binary.BigEndian.AppendUint32(b, c.Local)
}

func appendViewID(b []byte, v evs.ViewID) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(v.Rep))
	return binary.BigEndian.AppendUint64(b, v.Seq)
}

// Encode serializes a frame body (without the length prefix).
func Encode(f Frame) ([]byte, error) {
	return AppendEncode(nil, f)
}

// AppendEncode serializes a frame body (without the length prefix) onto
// dst and returns the extended slice, so callers with a scratch or pooled
// buffer can encode without a fresh allocation per frame. The MaxFrame
// check covers the appended body only, not dst's existing contents.
func AppendEncode(dst []byte, f Frame) ([]byte, error) {
	start := len(dst)
	b := append(dst, byte(f.kind()))
	switch v := f.(type) {
	case Connect:
		if len(v.Name) > MaxClientName {
			return nil, ErrNameTooLong
		}
		b = appendString8(b, v.Name)
	case Join:
		b = appendString8(b, v.Group)
	case Leave:
		b = appendString8(b, v.Group)
	case Send:
		b = append(b, byte(v.Service))
		b = appendGroups(b, v.Groups)
		b = binary.BigEndian.AppendUint32(b, uint32(len(v.Payload)))
		b = append(b, v.Payload...)
	case Welcome:
		b = appendClientID(b, v.Client)
		b = binary.BigEndian.AppendUint64(b, v.Token)
		b = appendBool(b, v.Resumed)
	case Message:
		b = appendClientID(b, v.Sender)
		b = append(b, byte(v.Service))
		b = binary.BigEndian.AppendUint64(b, v.Seq)
		b = appendGroups(b, v.Groups)
		b = binary.BigEndian.AppendUint32(b, uint32(len(v.Payload)))
		b = append(b, v.Payload...)
	case View:
		b = appendString8(b, v.Group)
		b = binary.BigEndian.AppendUint16(b, uint16(len(v.Members)))
		for _, m := range v.Members {
			b = appendClientID(b, m)
		}
	case Error:
		b = append(b, byte(v.Code))
		b = appendString8(b, v.Msg)
		if v.Code == CodeMembershipChanged {
			b = appendViewID(b, v.OldView)
			b = appendViewID(b, v.NewView)
		}
	case Private:
		b = appendClientID(b, v.To)
		b = append(b, byte(v.Service))
		b = binary.BigEndian.AppendUint32(b, uint32(len(v.Payload)))
		b = append(b, v.Payload...)
	case Resume:
		b = appendClientID(b, v.Client)
		b = binary.BigEndian.AppendUint64(b, v.Token)
		b = binary.BigEndian.AppendUint64(b, v.LastSeq)
	case Ack:
		b = binary.BigEndian.AppendUint64(b, v.Seq)
	case Bye:
		// Kind byte only.
	case Detach:
		b = appendString8(b, v.Reason)
		b = appendBool(b, v.CanResume)
	case Throttle:
		b = appendBool(b, v.On)
		b = binary.BigEndian.AppendUint32(b, v.Queued)
	case Seqd:
		if v.Frame == nil {
			return nil, fmt.Errorf("%w: empty Seqd", ErrBadFrame)
		}
		if _, nested := v.Frame.(Seqd); nested {
			return nil, fmt.Errorf("%w: nested Seqd", ErrBadFrame)
		}
		b = binary.BigEndian.AppendUint64(b, v.Seq)
		var err error
		if b, err = AppendEncode(b, v.Frame); err != nil {
			return nil, err
		}
	case Challenge:
		b = append(b, v.Nonce[:]...)
	case ChallengeAck:
		b = append(b, v.Nonce[:]...)
	default:
		return nil, fmt.Errorf("session: unknown frame %T", f)
	}
	if len(b)-start > MaxFrame {
		return nil, ErrTooLarge
	}
	return b, nil
}

type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil {
		return 0
	}
	if c.off+1 > len(c.b) {
		c.err = ErrTruncated
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *cursor) u16() uint16 {
	if c.err != nil {
		return 0
	}
	if c.off+2 > len(c.b) {
		c.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

// bool reads a strict boolean: any byte other than 0 or 1 is rejected,
// so every frame has exactly one valid encoding.
func (c *cursor) bool() bool {
	v := c.u8()
	if c.err == nil && v > 1 {
		c.err = ErrBadFrame
	}
	return v == 1
}

func (c *cursor) string8() string {
	n := int(c.u8())
	if c.err != nil {
		return ""
	}
	if c.off+n > len(c.b) {
		c.err = ErrTruncated
		return ""
	}
	s := string(c.b[c.off : c.off+n])
	c.off += n
	return s
}

func (c *cursor) groups() []string {
	n := int(c.u8())
	if n > group.MaxGroups {
		c.err = ErrBadFrame
		return nil
	}
	var gs []string
	for i := 0; i < n && c.err == nil; i++ {
		gs = append(gs, c.string8())
	}
	return gs
}

func (c *cursor) clientID() group.ClientID {
	d := c.u32()
	l := c.u32()
	return group.ClientID{Daemon: evs.ProcID(d), Local: l}
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.err = ErrTruncated
		return 0
	}
	v := binary.BigEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) nonce() (n [ChallengeNonceLen]byte) {
	if c.err != nil {
		return n
	}
	if c.off+ChallengeNonceLen > len(c.b) {
		c.err = ErrTruncated
		return n
	}
	copy(n[:], c.b[c.off:])
	c.off += ChallengeNonceLen
	return n
}

func (c *cursor) viewID() evs.ViewID {
	rep := c.u32()
	seq := c.u64()
	return evs.ViewID{Rep: evs.ProcID(rep), Seq: seq}
}

func (c *cursor) payload() []byte {
	n := int(c.u32())
	if c.err != nil {
		return nil
	}
	if n > MaxFrame || c.off+n > len(c.b) {
		c.err = ErrTruncated
		return nil
	}
	p := c.b[c.off : c.off+n : c.off+n]
	c.off += n
	return p
}

func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if c.off != len(c.b) {
		return fmt.Errorf("%w: trailing bytes", ErrBadFrame)
	}
	return nil
}

// Decode parses a frame body.
func Decode(b []byte) (Frame, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	c := &cursor{b: b, off: 1}
	var f Frame
	switch Kind(b[0]) {
	case KindConnect:
		f = Connect{Name: c.string8()}
	case KindJoin:
		f = Join{Group: c.string8()}
	case KindLeave:
		f = Leave{Group: c.string8()}
	case KindSend:
		svc := evs.Service(c.u8())
		f = Send{Service: svc, Groups: c.groups(), Payload: c.payload()}
	case KindWelcome:
		f = Welcome{Client: c.clientID(), Token: c.u64(), Resumed: c.bool()}
	case KindMessage:
		sender := c.clientID()
		svc := evs.Service(c.u8())
		seq := c.u64()
		f = Message{Sender: sender, Service: svc, Seq: seq, Groups: c.groups(), Payload: c.payload()}
	case KindView:
		g := c.string8()
		n := int(c.u16())
		members := make([]group.ClientID, 0, n)
		for i := 0; i < n && c.err == nil; i++ {
			members = append(members, c.clientID())
		}
		f = View{Group: g, Members: members}
	case KindError:
		e := Error{Code: ErrorCode(c.u8()), Msg: c.string8()}
		if e.Code == CodeMembershipChanged {
			e.OldView = c.viewID()
			e.NewView = c.viewID()
		}
		f = e
	case KindPrivate:
		to := c.clientID()
		svc := evs.Service(c.u8())
		f = Private{To: to, Service: svc, Payload: c.payload()}
	case KindResume:
		f = Resume{Client: c.clientID(), Token: c.u64(), LastSeq: c.u64()}
	case KindAck:
		f = Ack{Seq: c.u64()}
	case KindBye:
		f = Bye{}
	case KindDetach:
		f = Detach{Reason: c.string8(), CanResume: c.bool()}
	case KindThrottle:
		f = Throttle{On: c.bool(), Queued: c.u32()}
	case KindSeqd:
		seq := c.u64()
		if c.err != nil {
			return nil, c.err
		}
		rest := b[c.off:]
		if len(rest) == 0 {
			return nil, ErrTruncated
		}
		if Kind(rest[0]) == KindSeqd {
			return nil, fmt.Errorf("%w: nested Seqd", ErrBadFrame)
		}
		inner, err := Decode(rest)
		if err != nil {
			return nil, err
		}
		return Seqd{Seq: seq, Frame: inner}, nil
	case KindChallenge:
		f = Challenge{Nonce: c.nonce()}
	case KindChallengeAck:
		f = ChallengeAck{Nonce: c.nonce()}
	default:
		return nil, fmt.Errorf("%w: kind %d", ErrBadFrame, b[0])
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// writeScratch is the pooled rent size for one-shot frame writes: large
// enough that handshake and control frames encode without growing past
// the pooled backing.
const writeScratch = 1024

// WriteFrame writes a length-prefixed frame to w as a single Write call.
// Header and body are assembled in one pooled buffer: two Write syscalls
// per frame would double the syscall bill of every handshake and control
// frame, and a split header/body write lets the kernel emit a 4-byte TCP
// segment under TCP_NODELAY.
func WriteFrame(w io.Writer, f Frame) error {
	buf := bufpool.Get(writeScratch)[:4]
	b, err := AppendEncode(buf, f)
	if err != nil {
		bufpool.Put(buf)
		return err
	}
	binary.BigEndian.PutUint32(b[:4], uint32(len(b)-4))
	_, err = w.Write(b)
	bufpool.Put(b)
	return err
}

// ReadFrame reads one length-prefixed frame from r. The frame owns its
// freshly allocated backing; use ReadFramePooled on hot paths.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, ErrTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return Decode(body)
}

// ReadFramePooled reads one length-prefixed frame from r into a buffer
// rented from bufpool and returns the frame together with its backing
// buffer. Zero-copy fields of the decoded frame (Message.Payload and
// friends) alias buf, so the caller owns buf under the retained-or-Put
// convention: bufpool.Put(buf) once the frame is fully consumed, or let
// the garbage collector reclaim it when a payload escapes. Never both.
func ReadFramePooled(r io.Reader) (Frame, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrame {
		return nil, nil, ErrTooLarge
	}
	body := bufpool.Get(int(n))
	if _, err := io.ReadFull(r, body); err != nil {
		bufpool.Put(body)
		return nil, nil, err
	}
	f, err := Decode(body)
	if err != nil {
		bufpool.Put(body)
		return nil, nil, err
	}
	return f, body, nil
}
