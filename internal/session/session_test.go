package session

import (
	"bytes"
	"math/rand"
	"net"
	"reflect"
	"testing"

	"accelring/internal/evs"
	"accelring/internal/group"
)

func TestFrameRoundTrips(t *testing.T) {
	frames := []Frame{
		Connect{Name: "client-a"},
		Connect{},
		Join{Group: "chat"},
		Leave{Group: "chat"},
		Send{Service: evs.Agreed, Groups: []string{"a", "b"}, Payload: []byte("hello")},
		Send{Service: evs.Safe, Groups: []string{"x"}},
		Welcome{Client: group.ClientID{Daemon: 3, Local: 9}},
		Message{Sender: group.ClientID{Daemon: 1, Local: 2}, Service: evs.Agreed,
			Groups: []string{"g"}, Payload: bytes.Repeat([]byte{7}, 1350)},
		View{Group: "g", Members: []group.ClientID{
			{Daemon: 1, Local: 1}, {Daemon: 2, Local: 5}}},
		View{Group: "empty"},
		Error{Msg: "bad request"},
	}
	for _, in := range frames {
		enc, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%T): %v", in, err)
		}
		out, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(%T): %v", in, err)
		}
		// Normalize empty slices for comparison.
		if !framesEqual(in, out) {
			t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", out, in)
		}
	}
}

func framesEqual(a, b Frame) bool {
	norm := func(f Frame) Frame {
		switch v := f.(type) {
		case Send:
			if len(v.Groups) == 0 {
				v.Groups = nil
			}
			if len(v.Payload) == 0 {
				v.Payload = nil
			}
			return v
		case Message:
			if len(v.Groups) == 0 {
				v.Groups = nil
			}
			if len(v.Payload) == 0 {
				v.Payload = nil
			}
			return v
		case View:
			if len(v.Members) == 0 {
				v.Members = nil
			}
			return v
		}
		return f
	}
	return reflect.DeepEqual(norm(a), norm(b))
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Fatal("decoded empty frame")
	}
	if _, err := Decode([]byte{99}); err == nil {
		t.Fatal("decoded unknown kind")
	}
	// Truncations never panic and always error.
	enc, err := Encode(Message{Sender: group.ClientID{Daemon: 1, Local: 1}, Service: evs.Agreed,
		Groups: []string{"g1", "g2"}, Payload: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(enc); i++ {
		if _, err := Decode(enc[:i]); err == nil {
			t.Fatalf("decoded %d-byte prefix", i)
		}
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(64))
		rng.Read(b)
		if len(b) > 0 {
			b[0] = byte(1 + rng.Intn(8))
		}
		Decode(b)
	}
}

func TestEncodeLimits(t *testing.T) {
	if _, err := Encode(Connect{Name: string(bytes.Repeat([]byte("n"), MaxClientName+1))}); err == nil {
		t.Fatal("oversized client name accepted")
	}
	if _, err := Encode(Send{Service: evs.Agreed, Groups: []string{"g"},
		Payload: bytes.Repeat([]byte{0}, MaxFrame)}); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadWriteFrameOverPipe(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	want := Send{Service: evs.Safe, Groups: []string{"grp"}, Payload: []byte("data")}
	errCh := make(chan error, 1)
	go func() { errCh <- WriteFrame(a, want) }()
	got, err := ReadFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !framesEqual(want, got) {
		t.Fatalf("got %#v", got)
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go a.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(b); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}
