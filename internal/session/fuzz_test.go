package session

import (
	"testing"

	"accelring/internal/evs"
	"accelring/internal/group"
)

// FuzzDecode: the session codec must never panic, and decoded frames must
// re-encode/decode stably.
func FuzzDecode(f *testing.F) {
	for _, fr := range []Frame{
		Connect{Name: "c"},
		Join{Group: "g"},
		Leave{Group: "g"},
		Send{Service: evs.Agreed, Groups: []string{"a", "b"}, Payload: []byte("p")},
		Welcome{Client: group.ClientID{Daemon: 1, Local: 2}},
		Message{Sender: group.ClientID{Daemon: 1, Local: 2}, Service: evs.Safe,
			Groups: []string{"g"}, Payload: []byte("m")},
		View{Group: "g", Members: []group.ClientID{{Daemon: 1, Local: 1}}},
		Error{Msg: "e"},
		Private{To: group.ClientID{Daemon: 2, Local: 3}, Service: evs.Agreed, Payload: []byte("p")},
		Resume{Client: group.ClientID{Daemon: 1, Local: 2}, Token: 42, LastSeq: 7},
		Ack{Seq: 9},
		Bye{},
		Detach{Reason: "drain", CanResume: true},
		Throttle{On: true, Queued: 64},
		Seqd{Seq: 5, Frame: Message{Sender: group.ClientID{Daemon: 1, Local: 2},
			Service: evs.Agreed, Groups: []string{"g"}, Payload: []byte("m")}},
		Challenge{Nonce: [ChallengeNonceLen]byte{1, 15: 16}},
		ChallengeAck{Nonce: [ChallengeNonceLen]byte{2, 15: 32}},
	} {
		enc, err := Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := Decode(b)
		if err != nil {
			return
		}
		enc, err := Encode(fr)
		if err != nil {
			// Some decodable frames exceed re-encode limits (e.g. a
			// Connect whose name slipped past limits); they must at
			// least not panic.
			return
		}
		if _, err := Decode(enc); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
