// Partition: continuous operation through a network partition and merge —
// the Extended Virtual Synchrony capability that distinguishes the ring
// protocols from quorum-based orderers like Paxos (paper §V).
//
//	go run ./examples/partition
//
// Five participants form a ring. The network then splits 3/2: BOTH sides
// keep ordering messages within their own configurations (a Paxos group
// would stall on the minority side), with EVS telling every application
// exactly which configuration each message belongs to. When the partition
// heals, the membership algorithm merges the rings, delivering
// transitional configurations so each side knows precisely which members
// came through together — the hook applications use for state transfer
// (see examples/banklog).
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/membership"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

func main() {
	const n = 5
	hub := transport.NewHub()

	// The partition model: participants on different sides cannot hear
	// each other while the partition is up.
	part := faults.NewPartition()
	var plan faults.Plan
	plan.Add(faults.Rule{Name: "partition", Model: part})
	hub.SetInjector(faults.New(1, plan))

	type record struct {
		config evs.ViewID
		text   string
	}
	var mu sync.Mutex
	delivered := make(map[evs.ProcID][]record)
	nodes := make(map[evs.ProcID]*ringnode.Node)
	for id := evs.ProcID(1); id <= n; id++ {
		id := id
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		cfg := ringnode.Accelerated(id, ep, 10, 100, 7)
		cfg.Timeouts = membership.Timeouts{
			JoinInterval:    10 * time.Millisecond,
			Gather:          50 * time.Millisecond,
			Commit:          100 * time.Millisecond,
			TokenLoss:       200 * time.Millisecond,
			TokenRetransmit: 50 * time.Millisecond,
			Beacon:          150 * time.Millisecond,
		}
		cfg.OnEvent = func(ev evs.Event) {
			switch e := ev.(type) {
			case evs.Message:
				mu.Lock()
				delivered[id] = append(delivered[id], record{config: e.Config, text: string(e.Payload)})
				mu.Unlock()
			case evs.ConfigChange:
				kind := "regular"
				if e.Transitional {
					kind = "transitional"
				}
				fmt.Printf("participant %d: %-12s %v\n", id, kind, e.Config)
			}
		}
		node, err := ringnode.Start(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Stop()
		nodes[id] = node
	}
	waitRings(nodes, map[evs.ProcID]int{1: n, 2: n, 3: n, 4: n, 5: n})
	fmt.Println("\n--- full ring formed; sending a round of messages ---")
	for id, node := range nodes {
		node.Submit([]byte(fmt.Sprintf("pre-partition from %d", id)), evs.Agreed)
	}
	time.Sleep(300 * time.Millisecond)

	fmt.Println("\n--- PARTITION: {1,2,3} | {4,5} ---")
	part.Split(map[evs.ProcID]int{4: 1, 5: 1})
	waitRings(nodes, map[evs.ProcID]int{1: 3, 2: 3, 3: 3, 4: 2, 5: 2})
	fmt.Println("both sides operational — ordering continues on BOTH (no quorum needed)")
	nodes[1].Submit([]byte("majority side says hi"), evs.Agreed)
	nodes[5].Submit([]byte("minority side still working"), evs.Agreed)
	time.Sleep(300 * time.Millisecond)

	fmt.Println("\n--- HEAL: sides merge ---")
	part.Heal()
	waitRings(nodes, map[evs.ProcID]int{1: n, 2: n, 3: n, 4: n, 5: n})
	nodes[3].Submit([]byte("back together"), evs.Agreed)
	time.Sleep(500 * time.Millisecond)

	fmt.Println("\n--- delivery log by configuration ---")
	mu.Lock()
	defer mu.Unlock()
	ids := make([]evs.ProcID, 0, n)
	for id := range delivered {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Printf("participant %d:\n", id)
		for _, r := range delivered[id] {
			fmt.Printf("   [%v] %s\n", r.config, r.text)
		}
	}

	// Check: during the partition, side {1,2,3} delivered the majority
	// message, side {4,5} the minority one, and after the merge everyone
	// delivered "back together" in the same final configuration.
	finalCfg := nodes[1].Status().Ring.ID
	for _, id := range ids {
		last := delivered[id][len(delivered[id])-1]
		if last.text != "back together" || last.config != finalCfg {
			log.Fatalf("participant %d did not finish with the merged message: %+v", id, last)
		}
	}
	fmt.Println("\nboth sides ordered independently through the partition and merged cleanly: true")
}

// waitRings blocks until every participant is operational on a ring of the
// wanted size.
func waitRings(nodes map[evs.ProcID]*ringnode.Node, want map[evs.ProcID]int) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for id, node := range nodes {
			st := node.Status()
			if st.State != membership.StateOperational || len(st.Ring.Members) != want[id] {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for id, node := range nodes {
		fmt.Printf("participant %d stuck at %+v\n", id, node.Status())
	}
	log.Fatal("rings did not reach the expected shape")
}
