// Quickstart: three in-process participants form a ring over the
// in-memory transport and exchange totally ordered messages.
//
//	go run ./examples/quickstart
//
// Every participant prints the identical delivery sequence — that is the
// total-order guarantee of the Accelerated Ring protocol.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"accelring/internal/evs"
	"accelring/internal/membership"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

func main() {
	hub := transport.NewHub()

	var mu sync.Mutex
	delivered := make(map[evs.ProcID][]string)

	// Start three participants with the Accelerated Ring protocol:
	// personal window 10, global window 100, accelerated window 7.
	var nodes []*ringnode.Node
	for id := evs.ProcID(1); id <= 3; id++ {
		id := id
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		cfg := ringnode.Accelerated(id, ep, 10, 100, 7)
		cfg.OnEvent = func(ev evs.Event) {
			switch e := ev.(type) {
			case evs.Message:
				mu.Lock()
				delivered[id] = append(delivered[id], fmt.Sprintf("seq=%d from=%d %q", e.Seq, e.Sender, e.Payload))
				mu.Unlock()
			case evs.ConfigChange:
				fmt.Printf("participant %d: new configuration %v\n", id, e.Config)
			}
		}
		// Short timeouts so the demo forms its ring quickly.
		cfg.Timeouts = membership.Timeouts{
			JoinInterval:    10 * time.Millisecond,
			Gather:          50 * time.Millisecond,
			Commit:          100 * time.Millisecond,
			TokenLoss:       250 * time.Millisecond,
			TokenRetransmit: 60 * time.Millisecond,
		}
		node, err := ringnode.Start(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Stop()
		nodes = append(nodes, node)
	}

	// Wait for the ring to form.
	for _, n := range nodes {
		if !n.WaitState(membership.StateOperational, 5*time.Second) {
			log.Fatalf("ring did not form: %+v", n.Status())
		}
	}
	fmt.Println("ring formed:", nodes[0].Status().Ring)

	// Everyone multicasts concurrently; Agreed delivery totally orders it
	// all, and Safe delivery waits until every member has the message.
	for i, n := range nodes {
		for k := 0; k < 3; k++ {
			msg := fmt.Sprintf("hello %d from node %d", k, i+1)
			if err := n.Submit([]byte(msg), evs.Agreed); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := nodes[0].Submit([]byte("and this one is Safe"), evs.Safe); err != nil {
		log.Fatal(err)
	}

	time.Sleep(500 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	for id := evs.ProcID(1); id <= 3; id++ {
		fmt.Printf("\nparticipant %d delivered %d messages:\n", id, len(delivered[id]))
		for _, line := range delivered[id] {
			fmt.Println("  ", line)
		}
	}
	same := fmt.Sprint(delivered[1]) == fmt.Sprint(delivered[2]) &&
		fmt.Sprint(delivered[2]) == fmt.Sprint(delivered[3])
	fmt.Printf("\nall participants delivered the identical sequence: %v\n", same)
}
