// Quickstart: three in-process participants form a ring over the
// in-memory transport, join a group, and exchange totally ordered
// messages through the public accelring facade.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -obs :6060   # and browse /debug/vars, /debug/ring
//
// Every participant prints the identical delivery sequence — that is the
// total-order guarantee of the Accelerated Ring protocol. With -obs the
// demo keeps the ring running so the debug endpoints stay live.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"accelring"
)

func main() {
	obsAddr := flag.String("obs", "", "serve /debug/vars, /debug/ring and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// One shared metrics registry across the three nodes (as one process
	// hosting three participants; real deployments use one per process).
	var reg *accelring.Registry
	var dbg *accelring.DebugServer
	if *obsAddr != "" {
		reg = accelring.NewRegistry()
		var err error
		dbg, err = accelring.StartDebugServer(*obsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("observability: http://%s/debug/vars and /debug/ring\n", dbg.Addr())
	}

	// Short timeouts so the demo forms its ring quickly.
	timeouts := accelring.Timeouts{
		JoinInterval:    10 * time.Millisecond,
		Gather:          50 * time.Millisecond,
		Commit:          100 * time.Millisecond,
		TokenLoss:       250 * time.Millisecond,
		TokenRetransmit: 60 * time.Millisecond,
	}

	// Start three participants with the Accelerated Ring protocol:
	// personal window 10, global window 100, accelerated window 7.
	hub := accelring.NewHub()
	if reg != nil {
		hub.SetObserver(reg) // transport.inmem.* frame counters + bufpool.* gauges
	}
	var nodes []*accelring.Node
	for id := accelring.ProcID(1); id <= 3; id++ {
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		node, err := accelring.Open(ctx,
			accelring.WithSelf(id),
			accelring.WithTransport(ep),
			accelring.WithWindows(10, 100, 7),
			accelring.WithTimeouts(timeouts),
			accelring.WithObserver(reg), // nil is fine: observation disabled
		)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		if dbg != nil {
			dbg.AddTracer(fmt.Sprintf("node%d", id), node.Tracer())
		}
		nodes = append(nodes, node)
	}

	// Wait for the ring to form and join a common group.
	for _, n := range nodes {
		if err := n.WaitReady(ctx); err != nil {
			log.Fatalf("ring did not form: %v", err)
		}
	}
	fmt.Println("ring formed:", nodes[0].View())
	for _, n := range nodes {
		if err := n.Join("chat"); err != nil {
			log.Fatal(err)
		}
	}
	// Everyone waits until the agreed view holds all three members.
	for _, n := range nodes {
		for {
			ev, err := n.Receive(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if v, ok := ev.(*accelring.GroupView); ok && len(v.Members) == 3 {
				break
			}
		}
	}

	// Everyone multicasts concurrently; Agreed delivery totally orders it
	// all, and Safe delivery waits until every member has the message.
	for i, n := range nodes {
		for k := 0; k < 3; k++ {
			msg := fmt.Sprintf("hello %d from node %d", k, i+1)
			if err := n.Send(accelring.Agreed, []byte(msg), "chat"); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := nodes[0].Send(accelring.Safe, []byte("and this one is Safe"), "chat"); err != nil {
		log.Fatal(err)
	}

	// Collect the 10 deliveries at every node.
	delivered := make(map[accelring.ProcID][]string)
	for _, n := range nodes {
		id := n.ID().Daemon
		for len(delivered[id]) < 10 {
			ev, err := n.Receive(ctx)
			if err != nil {
				log.Fatal(err)
			}
			if m, ok := ev.(*accelring.Message); ok {
				delivered[id] = append(delivered[id],
					fmt.Sprintf("%s from=%v %q", m.Service, m.Sender, m.Payload))
			}
		}
	}

	for id := accelring.ProcID(1); id <= 3; id++ {
		fmt.Printf("\nparticipant %d delivered %d messages:\n", id, len(delivered[id]))
		for _, line := range delivered[id] {
			fmt.Println("  ", line)
		}
	}
	same := fmt.Sprint(delivered[1]) == fmt.Sprint(delivered[2]) &&
		fmt.Sprint(delivered[2]) == fmt.Sprint(delivered[3])
	fmt.Printf("\nall participants delivered the identical sequence: %v\n", same)

	if dbg != nil {
		fmt.Printf("\nring still running; metrics live at http://%s/debug/vars (Ctrl-C to exit)\n", dbg.Addr())
		keepBusy(ctx, nodes)
	}
}

// keepBusy trickles traffic so the debug endpoints show a moving system.
func keepBusy(ctx context.Context, nodes []*accelring.Node) {
	// Drain events so slow-consumer protection never trips.
	for _, n := range nodes {
		n := n
		go func() {
			for {
				if _, err := n.Receive(context.Background()); err != nil {
					return
				}
			}
		}()
	}
	i := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
		i++
		msg := fmt.Sprintf("tick %d", i)
		if err := nodes[i%len(nodes)].Send(accelring.Agreed, []byte(msg), "chat"); err != nil {
			return
		}
	}
}
