// Lossy: message loss and the retransmission machinery, under both
// protocols.
//
//	go run ./examples/lossy
//
// Three participants run over the in-memory transport while a fault
// injector drops 30% of the application data frames addressed to one of
// them. The token's rtr field requests the missing sequence numbers —
// immediately in the original protocol, one round later in the
// Accelerated Ring protocol (so messages that are merely still in flight
// are not requested needlessly) — and every message is still delivered
// everywhere in total order.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"accelring/internal/evs"
	"accelring/internal/faults"
	"accelring/internal/membership"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
	"accelring/internal/wire"
)

func run(accelerated bool) {
	name := "original"
	if accelerated {
		name = "accelerated"
	}
	fmt.Printf("=== %s protocol, 30%% loss at participant 3 ===\n", name)

	hub := transport.NewHub()
	// Drop 30% of application data frames addressed to participant 3.
	// Membership joins (and tokens) pass untouched, so the ring can form.
	var plan faults.Plan
	plan.Add(faults.Rule{
		Name:    "loss-at-3",
		To:      3,
		Classes: faults.ClassData,
		Match: func(p faults.Packet) bool {
			t, err := wire.PeekType(p.Frame)
			return err == nil && t == wire.FrameData
		},
		Model: faults.Loss{P: 0.3},
	})
	inj := faults.New(99, plan)
	hub.SetInjector(inj)

	var mu sync.Mutex
	delivered := make(map[evs.ProcID][]uint64)
	nodes := make(map[evs.ProcID]*ringnode.Node)
	for id := evs.ProcID(1); id <= 3; id++ {
		id := id
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		var cfg ringnode.Config
		if accelerated {
			cfg = ringnode.Accelerated(id, ep, 10, 100, 7)
		} else {
			cfg = ringnode.Original(id, ep, 10, 100)
		}
		cfg.Timeouts = membership.Timeouts{
			JoinInterval:    10 * time.Millisecond,
			Gather:          50 * time.Millisecond,
			Commit:          100 * time.Millisecond,
			TokenLoss:       400 * time.Millisecond,
			TokenRetransmit: 100 * time.Millisecond,
		}
		cfg.OnEvent = func(ev evs.Event) {
			if m, ok := ev.(evs.Message); ok {
				mu.Lock()
				delivered[id] = append(delivered[id], m.Seq)
				mu.Unlock()
			}
		}
		n, err := ringnode.Start(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer n.Stop()
		nodes[id] = n
	}
	for _, n := range nodes {
		if !n.WaitState(membership.StateOperational, 5*time.Second) {
			log.Fatalf("ring did not form: %+v", n.Status())
		}
	}

	const total = 200
	for i := 0; i < total; i++ {
		id := evs.ProcID(i%3 + 1)
		if err := nodes[id].Submit([]byte(fmt.Sprintf("msg-%d", i)), evs.Agreed); err != nil {
			log.Fatal(err)
		}
	}

	// Wait until everyone delivered everything.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(delivered[1]) >= total && len(delivered[2]) >= total && len(delivered[3]) >= total
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	counts := []int{len(delivered[1]), len(delivered[2]), len(delivered[3])}
	identical := fmt.Sprint(delivered[1]) == fmt.Sprint(delivered[2]) &&
		fmt.Sprint(delivered[2]) == fmt.Sprint(delivered[3])
	mu.Unlock()

	var dropped uint64
	for _, c := range inj.Counters() {
		dropped += c.Dropped
	}
	fmt.Printf("frames dropped at participant 3: %d\n", dropped)
	for id := evs.ProcID(1); id <= 3; id++ {
		st := nodes[id].Status()
		fmt.Printf("participant %d: delivered=%d retransmitted=%d rtr-requests=%d rounds=%d\n",
			id, counts[id-1], st.Engine.Retransmitted, st.Engine.Requested, st.Engine.Rounds)
	}
	fmt.Printf("identical delivery sequences despite loss: %v\n\n", identical)
	if !identical || counts[0] < total {
		log.Fatal("loss recovery failed")
	}
}

func main() {
	run(false)
	run(true)
}
