// Chat: the full client-daemon architecture over real UDP sockets.
//
//	go run ./examples/chat
//
// Three ordering daemons (one per "host") form a ring over UDP on
// loopback, exactly as cmd/ringdaemon deploys them. Three chat clients
// connect to their local daemons over TCP, join the #general group, and
// exchange messages with open-group, multi-group, and total-order
// semantics — everyone prints the identical transcript.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"accelring/internal/client"
	"accelring/internal/daemon"
	"accelring/internal/evs"
	"accelring/internal/membership"
	"accelring/internal/obs"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

func main() {
	const hosts = 3

	obsAddr := flag.String("obs", "", "serve /debug/vars, /debug/ring and /debug/pprof on this address (e.g. :6060)")
	flag.Parse()

	// One registry for all three daemons (this demo hosts them in one
	// process; a real deployment passes -obs to each ringdaemon).
	var reg *obs.Registry
	var dbg *obs.Server
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		var err error
		dbg, err = obs.StartServer(*obsAddr, reg)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		fmt.Printf("observability: http://%s/debug/vars\n", dbg.Addr())
	}

	// Open the UDP transports first so every daemon can learn the
	// others' ports, then interconnect them (in a real deployment these
	// are fixed addresses in a config file; see cmd/ringdaemon).
	transports := make([]*transport.UDP, hosts)
	for i := range transports {
		u, err := transport.NewUDP(transport.UDPConfig{
			Self:   evs.ProcID(i + 1),
			Listen: transport.UDPPeer{Data: "127.0.0.1:0", Token: "127.0.0.1:0"},
			Obs:    reg,
		})
		if err != nil {
			log.Fatal(err)
		}
		transports[i] = u
	}
	for i, u := range transports {
		for j, peer := range transports {
			if i != j {
				if err := u.AddPeer(evs.ProcID(j+1), peer.LocalAddrs()); err != nil {
					log.Fatal(err)
				}
			}
		}
	}

	// Start the daemons.
	daemons := make([]*daemon.Daemon, hosts)
	for i := range daemons {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		ringCfg := ringnode.Accelerated(evs.ProcID(i+1), transports[i], 20, 160, 15)
		ringCfg.Timeouts = membership.Timeouts{
			JoinInterval:    10 * time.Millisecond,
			Gather:          60 * time.Millisecond,
			Commit:          120 * time.Millisecond,
			TokenLoss:       300 * time.Millisecond,
			TokenRetransmit: 75 * time.Millisecond,
		}
		if reg != nil {
			tracer := obs.NewRingTracer(obs.DefaultTraceDepth)
			ringCfg.Observer = &obs.RingObserver{Reg: reg, Tracer: tracer}
			dbg.AddTracer(fmt.Sprintf("daemon%d", i+1), tracer)
		}
		d, err := daemon.Start(daemon.Config{Ring: ringCfg, Listener: ln, Obs: reg})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Stop()
		daemons[i] = d
	}
	for i, d := range daemons {
		if !d.WaitOperational(10 * time.Second) {
			log.Fatalf("daemon %d did not become operational", i+1)
		}
	}
	fmt.Println("daemons up, ring:", daemons[0].Node().Status().Ring)

	// Connect one chat client per daemon and join #general.
	names := []string{"alice", "bob", "carol"}
	clients := make([]*client.Client, hosts)
	transcripts := make([][]string, hosts)
	fullView := make([]chan struct{}, hosts)
	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := range clients {
		c, err := client.Dial("tcp", daemons[i].Addr().String(), names[i])
		if err != nil {
			log.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		if err := c.Join("#general"); err != nil {
			log.Fatal(err)
		}
		i := i
		fullView[i] = make(chan struct{})
		var sawFull bool
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ev := range c.Events() {
				switch e := ev.(type) {
				case *client.Message:
					mu.Lock()
					transcripts[i] = append(transcripts[i],
						fmt.Sprintf("[%v] %s", e.Sender, e.Payload))
					mu.Unlock()
				case *client.View:
					fmt.Printf("%s sees %s = %v\n", names[i], e.Group, e.Members)
					if !sawFull && len(e.Members) == hosts {
						sawFull = true
						close(fullView[i])
					}
				}
			}
		}()
	}

	// Wait until every client saw the complete 3-member view, so the
	// chat lines below reach everyone.
	for i, ready := range fullView {
		select {
		case <-ready:
		case <-time.After(10 * time.Second):
			log.Fatalf("%s never saw the full view", names[i])
		}
	}

	// Chat! Everyone talks at once; the ring orders it.
	lines := map[int][]string{
		0: {"hi all", "how is the paper reproduction going?"},
		1: {"hello!", "the token is fast today"},
		2: {"hey", "accelerated indeed"},
	}
	for i, c := range clients {
		for _, line := range lines[i] {
			if err := c.Multicast(evs.Agreed, []byte(line), "#general"); err != nil {
				log.Fatal(err)
			}
		}
	}

	// An "announcer" that never joined sends to the group anyway — open
	// group semantics — and to a second group in the same message.
	announcer, err := client.Dial("tcp", daemons[0].Addr().String(), "announcer")
	if err != nil {
		log.Fatal(err)
	}
	defer announcer.Close()
	if err := announcer.Multicast(evs.Safe, []byte("<maintenance at noon>"), "#general", "#ops"); err != nil {
		log.Fatal(err)
	}

	time.Sleep(1 * time.Second)
	for _, c := range clients {
		c.Close()
	}
	wg.Wait()

	total := 7 // 6 chat lines + 1 announcement
	fmt.Println("\ntranscripts:")
	same := true
	for i, tr := range transcripts {
		fmt.Printf("-- %s (%d lines)\n", names[i], len(tr))
		for _, l := range tr {
			fmt.Println("   ", l)
		}
		if len(tr) != total || fmt.Sprint(tr) != fmt.Sprint(transcripts[0]) {
			same = false
		}
	}
	fmt.Printf("\nall transcripts identical: %v\n", same)
	if !same {
		log.Fatal("transcripts diverged")
	}
}
