// Banklog: a replicated bank built on Safe delivery and Extended Virtual
// Synchrony, with membership-change state transfer.
//
//	go run ./examples/banklog
//
// Four replicas apply deposit/transfer commands to local account tables
// strictly in the delivered total order. Safe delivery guarantees a
// command is applied only once every replica holds it. When membership
// changes (here: replica 4 is killed mid-run), EVS delivers a
// configuration change at the same point in the total order everywhere,
// and the replicas run the classic state-transfer pattern on top of it:
//
//  1. the new configuration's leader multicasts a MARKER;
//  2. from the marker on, every replica buffers commands instead of
//     applying them, and the leader snapshots its state as of the marker;
//  3. the leader multicasts the SNAPSHOT; a replica adopts it if the
//     snapshot is ahead of its own state, then everyone replays the
//     buffered commands.
//
// Because marker and snapshot travel in the same total order as the
// commands, every replica resolves to the identical ledger — which the
// final checksum comparison verifies.
package main

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"accelring/internal/evs"
	"accelring/internal/membership"
	"accelring/internal/ringnode"
	"accelring/internal/transport"
)

// Payload kinds on the wire.
const (
	kindCommand  byte = 1
	kindMarker   byte = 2
	kindSnapshot byte = 3
)

// command is one ledger operation. from == 0 means a deposit.
type command struct {
	from, to uint16
	amount   uint32
}

func (c command) encode() []byte {
	b := make([]byte, 9)
	b[0] = kindCommand
	binary.BigEndian.PutUint16(b[1:], c.from)
	binary.BigEndian.PutUint16(b[3:], c.to)
	binary.BigEndian.PutUint32(b[5:], c.amount)
	return b
}

func decodeCommand(b []byte) (command, bool) {
	if len(b) != 9 || b[0] != kindCommand {
		return command{}, false
	}
	return command{
		from:   binary.BigEndian.Uint16(b[1:]),
		to:     binary.BigEndian.Uint16(b[3:]),
		amount: binary.BigEndian.Uint32(b[5:]),
	}, true
}

func encodeMarker(epoch uint64) []byte {
	b := make([]byte, 9)
	b[0] = kindMarker
	binary.BigEndian.PutUint64(b[1:], epoch)
	return b
}

// snapshot: kind(1) epoch(8) applied(8) n(2) {account(2) balance(8)}*
func encodeSnapshot(epoch, applied uint64, balances map[uint16]int64) []byte {
	accounts := make([]uint16, 0, len(balances))
	for a := range balances {
		accounts = append(accounts, a)
	}
	sort.Slice(accounts, func(i, j int) bool { return accounts[i] < accounts[j] })
	b := make([]byte, 0, 19+10*len(accounts))
	b = append(b, kindSnapshot)
	b = binary.BigEndian.AppendUint64(b, epoch)
	b = binary.BigEndian.AppendUint64(b, applied)
	b = binary.BigEndian.AppendUint16(b, uint16(len(accounts)))
	for _, a := range accounts {
		b = binary.BigEndian.AppendUint16(b, a)
		b = binary.BigEndian.AppendUint64(b, uint64(balances[a]))
	}
	return b
}

func decodeSnapshot(b []byte) (epoch, applied uint64, balances map[uint16]int64, ok bool) {
	if len(b) < 19 || b[0] != kindSnapshot {
		return 0, 0, nil, false
	}
	epoch = binary.BigEndian.Uint64(b[1:])
	applied = binary.BigEndian.Uint64(b[9:])
	n := int(binary.BigEndian.Uint16(b[17:]))
	if len(b) != 19+10*n {
		return 0, 0, nil, false
	}
	balances = make(map[uint16]int64, n)
	off := 19
	for i := 0; i < n; i++ {
		a := binary.BigEndian.Uint16(b[off:])
		v := int64(binary.BigEndian.Uint64(b[off+2:]))
		balances[a] = v
		off += 10
	}
	return epoch, applied, balances, true
}

// replica is one bank replica. All mutation happens on the protocol
// goroutine (OnEvent); the mutex protects the final read.
type replica struct {
	mu       sync.Mutex
	id       evs.ProcID
	node     *ringnode.Node
	balances map[uint16]int64
	applied  uint64

	epoch     uint64 // current regular configuration's sequence number
	leader    bool
	buffering bool
	buffer    []command
}

func (r *replica) applyNow(c command) {
	if c.from != 0 {
		if r.balances[c.from] < int64(c.amount) {
			return // deterministic overdraft rejection
		}
		r.balances[c.from] -= int64(c.amount)
	}
	r.balances[c.to] += int64(c.amount)
	r.applied++
}

// onEvent runs on the protocol goroutine and is the only writer.
func (r *replica) onEvent(ev evs.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch e := ev.(type) {
	case evs.ConfigChange:
		if e.Transitional {
			return
		}
		r.epoch = e.Config.ID.Seq
		r.leader = len(e.Config.Members) > 0 && e.Config.Members[0] == r.id
		r.buffering = false
		r.buffer = nil
		fmt.Printf("replica %d: configuration %v (leader=%v)\n", r.id, e.Config, r.leader)
		if r.leader {
			// Kick off state transfer for the new configuration.
			go r.node.Submit(encodeMarker(r.epoch), evs.Safe)
		}
	case evs.Message:
		r.onMessage(e)
	}
}

func (r *replica) onMessage(e evs.Message) {
	switch {
	case len(e.Payload) > 0 && e.Payload[0] == kindCommand:
		c, ok := decodeCommand(e.Payload)
		if !ok {
			return
		}
		if r.buffering {
			r.buffer = append(r.buffer, c)
			return
		}
		r.applyNow(c)
	case len(e.Payload) > 0 && e.Payload[0] == kindMarker:
		epoch := binary.BigEndian.Uint64(e.Payload[1:])
		if epoch != r.epoch {
			return // stale marker from a superseded configuration
		}
		// From this point in the total order, everyone buffers; the
		// leader snapshots its state exactly here.
		r.buffering = true
		r.buffer = nil
		if r.leader {
			snap := encodeSnapshot(epoch, r.applied, cloneBalances(r.balances))
			go r.node.Submit(snap, evs.Safe)
		}
	case len(e.Payload) > 0 && e.Payload[0] == kindSnapshot:
		epoch, applied, balances, ok := decodeSnapshot(e.Payload)
		if !ok || epoch != r.epoch || !r.buffering {
			return
		}
		if applied > r.applied {
			// We are behind (we missed a configuration): adopt.
			fmt.Printf("replica %d: adopting snapshot (applied %d -> %d)\n", r.id, r.applied, applied)
			r.balances = balances
			r.applied = applied
		}
		r.buffering = false
		for _, c := range r.buffer {
			r.applyNow(c)
		}
		r.buffer = nil
	}
}

func cloneBalances(m map[uint16]int64) map[uint16]int64 {
	out := make(map[uint16]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// checksum summarizes the ledger deterministically.
func (r *replica) checksum() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	accounts := make([]uint16, 0, len(r.balances))
	for a := range r.balances {
		accounts = append(accounts, a)
	}
	sort.Slice(accounts, func(i, j int) bool { return accounts[i] < accounts[j] })
	h := fnv.New64a()
	var buf [10]byte
	for _, a := range accounts {
		binary.BigEndian.PutUint16(buf[0:], a)
		binary.BigEndian.PutUint64(buf[2:], uint64(r.balances[a]))
		h.Write(buf[:])
	}
	return h.Sum64(), r.applied
}

func main() {
	const replicas = 4
	hub := transport.NewHub()
	rng := rand.New(rand.NewSource(7))

	banks := make(map[evs.ProcID]*replica)
	nodes := make(map[evs.ProcID]*ringnode.Node)
	for id := evs.ProcID(1); id <= replicas; id++ {
		ep, err := hub.Endpoint(id, 0, 0)
		if err != nil {
			log.Fatal(err)
		}
		bank := &replica{id: id, balances: make(map[uint16]int64)}
		banks[id] = bank
		cfg := ringnode.Accelerated(id, ep, 15, 120, 10)
		cfg.Timeouts = membership.Timeouts{
			JoinInterval:    10 * time.Millisecond,
			Gather:          50 * time.Millisecond,
			Commit:          100 * time.Millisecond,
			TokenLoss:       250 * time.Millisecond,
			TokenRetransmit: 60 * time.Millisecond,
		}
		cfg.OnEvent = bank.onEvent
		node, err := ringnode.Start(cfg)
		if err != nil {
			log.Fatal(err)
		}
		defer node.Stop()
		bank.node = node
		nodes[id] = node
	}
	for _, n := range nodes {
		if !n.WaitState(membership.StateOperational, 5*time.Second) {
			log.Fatalf("ring did not form: %+v", n.Status())
		}
	}
	fmt.Println("bank cluster up:", nodes[1].Status().Ring)

	// Seed accounts, then run random transfers from every replica.
	for acct := uint16(1); acct <= 8; acct++ {
		if err := nodes[1].Submit(command{to: acct, amount: 1000}.encode(), evs.Safe); err != nil {
			log.Fatal(err)
		}
	}
	submitTransfers := func(id evs.ProcID, n int) {
		node := nodes[id]
		for i := 0; i < n; i++ {
			cmd := command{
				from:   uint16(rng.Intn(8) + 1),
				to:     uint16(rng.Intn(8) + 1),
				amount: uint32(rng.Intn(200) + 1),
			}
			if err := node.Submit(cmd.encode(), evs.Safe); err != nil {
				return // replica stopped mid-run; fine
			}
		}
	}
	for id := evs.ProcID(1); id <= replicas; id++ {
		submitTransfers(id, 25)
	}

	// Kill replica 4 mid-stream: the ring reforms, the leader drives a
	// state transfer, and the survivors keep going.
	time.Sleep(200 * time.Millisecond)
	fmt.Println("\n*** killing replica 4 ***")
	nodes[4].Stop()
	for id := evs.ProcID(1); id <= 3; id++ {
		submitTransfers(id, 25)
	}
	time.Sleep(1500 * time.Millisecond)

	fmt.Println()
	var sums []uint64
	for id := evs.ProcID(1); id <= 3; id++ {
		sum, applied := banks[id].checksum()
		sums = append(sums, sum)
		fmt.Printf("replica %d: applied=%d checksum=%016x\n", id, applied, sum)
	}
	agree := sums[0] == sums[1] && sums[1] == sums[2]
	fmt.Printf("\nsurviving replicas agree on the ledger: %v\n", agree)
	if !agree {
		log.Fatal("replicas diverged")
	}
}
