package accelring

import (
	"errors"
	"fmt"
	"testing"
)

// TestTraceSamplingWiring opens a cluster with per-message tracing at
// sample rate 1 and checks that spans flow end to end through the
// facade: the sender records submit and deliver, a receiver records recv
// and deliver for the same seqs.
func TestTraceSamplingWiring(t *testing.T) {
	nodes := openCluster(t, 2, WithTraceSampling(1))
	for _, n := range nodes {
		if n.MsgTracer() == nil {
			t.Fatalf("node %v: MsgTracer() = nil with WithTraceSampling", n.ID())
		}
	}

	for _, n := range nodes {
		if err := n.Join("traced"); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		for {
			if v := nextEvent[*GroupView](t, n); v.Group == "traced" && len(v.Members) == 2 {
				break
			}
		}
	}
	for i := 0; i < 3; i++ {
		if err := nodes[0].Send(Agreed, []byte(fmt.Sprintf("m%d", i)), "traced"); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		for got := 0; got < 3; got++ {
			nextEvent[*Message](t, n)
		}
	}

	counts := func(n *Node) map[MsgStage]int {
		out := make(map[MsgStage]int)
		for _, ev := range n.MsgTracer().Snapshot(0) {
			out[ev.Stage]++
		}
		return out
	}
	sender := counts(nodes[0])
	if sender[StageSubmit] < 3 {
		t.Errorf("sender submits = %d, want >= 3 (%v)", sender[StageSubmit], sender)
	}
	if sender[StageDeliver] < 3 {
		t.Errorf("sender delivers = %d, want >= 3 (%v)", sender[StageDeliver], sender)
	}
	receiver := counts(nodes[1])
	if receiver[StageRecv] < 3 || receiver[StageDeliver] < 3 {
		t.Errorf("receiver recv=%d deliver=%d, want >= 3 each",
			receiver[StageRecv], receiver[StageDeliver])
	}

	// Deterministic sampling: both nodes traced the same seqs, so spans
	// merge across nodes.
	senderSeqs := make(map[uint64]bool)
	for _, ev := range nodes[0].MsgTracer().Snapshot(0) {
		if ev.Stage == StageDeliver {
			senderSeqs[ev.Seq] = true
		}
	}
	matched := 0
	for _, ev := range nodes[1].MsgTracer().Snapshot(0) {
		if ev.Stage == StageDeliver && senderSeqs[ev.Seq] {
			matched++
		}
	}
	if matched < 3 {
		t.Errorf("only %d delivered seqs traced on both nodes, want >= 3", matched)
	}
}

// TestTraceSamplingOffByDefault: no option, no tracer — the nil fast
// path the zero-alloc gates depend on.
func TestTraceSamplingOffByDefault(t *testing.T) {
	nodes := openCluster(t, 2)
	for _, n := range nodes {
		if tr := n.MsgTracer(); tr != nil {
			t.Fatalf("node %v: MsgTracer() = %v without WithTraceSampling", n.ID(), tr)
		}
		if trs := n.MsgTracers(); trs != nil {
			t.Fatalf("node %v: MsgTracers() = %v without WithTraceSampling", n.ID(), trs)
		}
	}
}

// TestTraceSamplingValidation: negative sampling is a config error.
func TestTraceSamplingValidation(t *testing.T) {
	cfg := Config{Self: 1}
	WithTraceSampling(-1)(&cfg)
	if err := cfg.Validate(); !errors.Is(err, ErrBadBufferSize) {
		t.Fatalf("negative TraceSampling: err = %v, want ErrBadBufferSize", err)
	}
}

// TestShardedTraceSampling: every ring of a sharded node gets its own
// tracer; MsgTracer() is ring 0's.
func TestShardedTraceSampling(t *testing.T) {
	nodes := openShardedCluster(t, 2, 2, WithTraceSampling(1))
	n := nodes[0]
	trs := n.MsgTracers()
	if len(trs) != 2 || trs[0] == nil || trs[1] == nil {
		t.Fatalf("MsgTracers() = %v, want 2 non-nil", trs)
	}
	if n.MsgTracer() != trs[0] {
		t.Fatal("MsgTracer() is not ring 0's tracer")
	}
	if trs[0] == trs[1] {
		t.Fatal("rings share one tracer")
	}
}
