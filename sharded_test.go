package accelring

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// openShardedCluster starts nn facade nodes, each running `shards` rings
// over per-ring hubs, and waits until every ring on every node is ready.
func openShardedCluster(t *testing.T, nn, shards int, opts ...Option) []*Node {
	t.Helper()
	hubs := make([]*Hub, shards)
	for r := range hubs {
		hubs[r] = NewHub()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	nodes := make([]*Node, nn)
	for i := 0; i < nn; i++ {
		ts := make([]Transport, shards)
		for r := range ts {
			ep, err := hubs[r].Endpoint(ProcID(i+1), 4096, 64)
			if err != nil {
				t.Fatal(err)
			}
			ts[r] = ep
		}
		all := append([]Option{
			WithSelf(ProcID(i + 1)),
			WithShards(shards),
			WithShardTransports(ts...),
			WithWindows(10, 100, 7),
			WithTimeouts(fastTimeouts()),
		}, opts...)
		n, err := Open(ctx, all...)
		if err != nil {
			t.Fatalf("Open node %d: %v", i+1, err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if err := n.WaitReady(ctx); err != nil {
			t.Fatalf("WaitReady: %v", err)
		}
	}
	return nodes
}

func TestShardsValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
	}{
		{"shards default to one", func(c *Config) { c.Shards = 0 }, nil},
		{"negative shards", func(c *Config) { c.Shards = -1 }, ErrBadShards},
		{"too many shards", func(c *Config) { c.Shards = MaxShards + 1 }, ErrBadShards},
		{"single transport with shards", func(c *Config) {
			c.Shards = 2
			ep, _ := NewHub().Endpoint(1, 0, 0)
			c.Transport = ep
			c.Listen, c.Peers = UDPAddrs{}, nil
		}, ErrBadShards},
		{"transports length mismatch", func(c *Config) {
			c.Shards = 2
			ep, _ := NewHub().Endpoint(1, 0, 0)
			c.Transports = []Transport{ep}
			c.Listen, c.Peers = UDPAddrs{}, nil
		}, ErrBadShards},
		{"nil per-ring transport", func(c *Config) {
			c.Shards = 2
			ep, _ := NewHub().Endpoint(1, 0, 0)
			c.Transports = []Transport{ep, nil}
			c.Listen, c.Peers = UDPAddrs{}, nil
		}, ErrBadShards},
		{"sharded UDP with numeric ports", func(c *Config) { c.Shards = 2 }, nil},
		{"sharded UDP with ephemeral port", func(c *Config) {
			c.Shards = 2
			c.Listen.Data = "127.0.0.1:0"
		}, ErrShardPorts},
		{"sharded UDP with service-name port", func(c *Config) {
			c.Shards = 2
			c.Peers[2] = UDPAddrs{Data: "127.0.0.1:domain", Token: "127.0.0.1:7411"}
		}, ErrShardPorts},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validUDPConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestRingOfExported(t *testing.T) {
	// Pinned alongside the internal goldens: the public hash is the same
	// stable function every node routes by.
	if got := RingOf("g-0", 2); got != 1 {
		t.Fatalf("RingOf(g-0, 2) = %d, want 1", got)
	}
	if got := RingOf("g-1", 2); got != 0 {
		t.Fatalf("RingOf(g-1, 2) = %d, want 0", got)
	}
}

// TestShardedNodeOrder drives the sharded facade end to end: groups land
// on distinct rings, every member delivers each group's stream in one
// identical order, and a ring-spanning send splits per ring.
func TestShardedNodeOrder(t *testing.T) {
	nodes := openShardedCluster(t, 3, 2)

	gA, gB := "g-0", "g-1" // ring 1 and ring 0, pinned
	if nodes[0].RingFor(gA) == nodes[0].RingFor(gB) {
		t.Fatal("test groups collapsed onto one ring")
	}
	for _, n := range nodes {
		if n.Shards() != 2 {
			t.Fatalf("Shards() = %d", n.Shards())
		}
		for _, g := range []string{gA, gB} {
			if err := n.Join(g); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Wait until everyone agrees both groups have all three members.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		full := true
		for _, n := range nodes {
			if len(n.Members(gA)) != 3 || len(n.Members(gB)) != 3 {
				full = false
			}
		}
		if full {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	const perSender = 15
	for k := 0; k < perSender; k++ {
		for i, n := range nodes {
			for _, g := range []string{gA, gB} {
				if err := n.Send(Agreed, []byte(fmt.Sprintf("%s/n%d/%d", g, i, k)), g); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Each node delivers 3*perSender messages per group; streams must be
	// identical across nodes group by group.
	want := 3 * perSender
	streams := make([]map[string][]string, len(nodes))
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i, n := range nodes {
		streams[i] = map[string][]string{}
		got := 0
		for got < 2*want {
			ev, err := n.Receive(ctx)
			if err != nil {
				t.Fatalf("node %d after %d messages: %v", i+1, got, err)
			}
			m, isMsg := ev.(*Message)
			if !isMsg {
				continue
			}
			if len(m.Groups) != 1 {
				t.Fatalf("single-group send delivered with groups %v", m.Groups)
			}
			streams[i][m.Groups[0]] = append(streams[i][m.Groups[0]], string(m.Payload))
			got++
		}
	}
	for _, g := range []string{gA, gB} {
		ref := streams[0][g]
		if len(ref) != want {
			t.Fatalf("node 1 delivered %d in %s, want %d", len(ref), g, want)
		}
		for i := 1; i < len(streams); i++ {
			if len(streams[i][g]) != want {
				t.Fatalf("node %d delivered %d in %s, want %d", i+1, len(streams[i][g]), g, want)
			}
			for k := range ref {
				if streams[i][g][k] != ref[k] {
					t.Fatalf("group %s delivery %d diverged: node %d %q, node 1 %q",
						g, k, i+1, streams[i][g][k], ref[k])
				}
			}
		}
	}

	// A send spanning both rings splits into one ordered copy per ring.
	if err := nodes[0].Send(Agreed, []byte("both"), gA, gB); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for len(seen) < 2 {
		ev, err := nodes[1].Receive(ctx)
		if err != nil {
			t.Fatalf("waiting for split send: %v", err)
		}
		if m, isMsg := ev.(*Message); isMsg && string(m.Payload) == "both" {
			if len(m.Groups) != 1 {
				t.Fatalf("split copy carries groups %v", m.Groups)
			}
			seen[m.Groups[0]] = true
		}
	}
	if !seen[gA] || !seen[gB] {
		t.Fatalf("split send did not cover both rings: %v", seen)
	}
}

// TestShardedViewChangeRings checks that every ring announces its own
// tagged ViewChange and per-ring views are queryable.
func TestShardedViewChangeRings(t *testing.T) {
	nodes := openShardedCluster(t, 2, 2)
	n := nodes[0]

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ringsSeen := map[int]bool{}
	for len(ringsSeen) < 2 {
		ev, err := n.Receive(ctx)
		if err != nil {
			t.Fatalf("waiting for view changes: %v", err)
		}
		if vc, isVC := ev.(*ViewChange); isVC {
			if vc.Ring < 0 || vc.Ring >= 2 {
				t.Fatalf("ViewChange.Ring = %d", vc.Ring)
			}
			if !vc.Transitional {
				ringsSeen[vc.Ring] = true
			}
		}
	}
	for r := 0; r < 2; r++ {
		if n.ViewOf(r).IsZero() {
			t.Fatalf("ring %d view still zero after ready", r)
		}
	}
	if n.View() != n.ViewOf(0) {
		t.Fatal("View() is not ring 0's view")
	}
}

// TestShardedObserver checks per-ring metric labels and tracers.
func TestShardedObserver(t *testing.T) {
	reg := NewRegistry()
	nodes := openShardedCluster(t, 2, 2, WithObserver(reg))
	n := nodes[0]

	tracers := n.Tracers()
	if len(tracers) != 2 || tracers[0] == nil || tracers[1] == nil {
		t.Fatalf("Tracers() = %v", tracers)
	}
	if n.Tracer() != tracers[0] {
		t.Fatal("Tracer() is not ring 0's tracer")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Counter("shard0.ring.rounds").Value() > 0 &&
			reg.Counter("shard1.ring.rounds").Value() > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("per-ring round counters never incremented: shard0=%d shard1=%d",
		reg.Counter("shard0.ring.rounds").Value(),
		reg.Counter("shard1.ring.rounds").Value())
}

func TestShiftPort(t *testing.T) {
	cases := []struct {
		addr string
		by   int
		want string
		ok   bool
	}{
		{"127.0.0.1:7400", 2, "127.0.0.1:7402", true},
		{"127.0.0.1:7400", 0, "127.0.0.1:7400", true},
		{"[::1]:9000", 4, "[::1]:9004", true},
		{"127.0.0.1:0", 2, "", false},
		{"127.0.0.1:domain", 2, "", false},
		{"127.0.0.1:65535", 2, "", false},
		{"no-port", 2, "", false},
	}
	for _, tc := range cases {
		got, err := shiftPort(tc.addr, tc.by)
		if tc.ok != (err == nil) {
			t.Fatalf("shiftPort(%q, %d) error = %v, want ok=%v", tc.addr, tc.by, err, tc.ok)
		}
		if tc.ok && got != tc.want {
			t.Fatalf("shiftPort(%q, %d) = %q, want %q", tc.addr, tc.by, got, tc.want)
		}
	}
}
