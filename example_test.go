package accelring_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"accelring"
)

// ExampleOpen runs a single-node ring in process: the node forms a
// singleton ring, joins a group, and receives its own totally ordered
// message.
func ExampleOpen() {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	hub := accelring.NewHub() // in-process transport; use WithUDP on a real network
	ep, err := hub.Endpoint(1, 1024, 16)
	if err != nil {
		log.Fatal(err)
	}

	node, err := accelring.Open(ctx,
		accelring.WithSelf(1),
		accelring.WithTransport(ep),
		accelring.WithWindows(10, 100, 7),
		accelring.WithTimeouts(accelring.Timeouts{
			JoinInterval: 5 * time.Millisecond,
			Gather:       20 * time.Millisecond,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	if err := node.WaitReady(ctx); err != nil {
		log.Fatal(err)
	}
	if err := node.Join("chat"); err != nil {
		log.Fatal(err)
	}
	if err := node.Send(accelring.Agreed, []byte("hello, ring"), "chat"); err != nil {
		log.Fatal(err)
	}

	for {
		ev, err := node.Receive(ctx)
		if err != nil {
			log.Fatal(err)
		}
		switch e := ev.(type) {
		case *accelring.GroupView:
			fmt.Printf("view of %s: %d member(s)\n", e.Group, len(e.Members))
		case *accelring.Message:
			fmt.Printf("%s message from %v: %s\n", e.Service, e.Sender, e.Payload)
			return
		}
	}

	// Output:
	// view of chat: 1 member(s)
	// agreed message from 1#1: hello, ring
}
