package accelring

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"
)

// freeUDPPorts reserves n distinct ephemeral UDP ports and returns them.
// The sockets are closed before returning, so a parallel process could
// in principle grab one — acceptable for tests.
func freeUDPPorts(t *testing.T, n int) []int {
	t.Helper()
	conns := make([]net.PacketConn, n)
	ports := make([]int, n)
	for i := range conns {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
		ports[i] = c.LocalAddr().(*net.UDPAddr).Port
	}
	for _, c := range conns {
		c.Close()
	}
	return ports
}

// TestOpenWithWireUDP opens a two-node ring through the unified
// WithWire option — unicast mode with syscall batching and adaptive
// packing on — and checks ordered delivery end to end over real UDP
// sockets.
func TestOpenWithWireUDP(t *testing.T) {
	ports := freeUDPPorts(t, 4)
	addrs := []UDPAddrs{
		{Data: fmt.Sprintf("127.0.0.1:%d", ports[0]), Token: fmt.Sprintf("127.0.0.1:%d", ports[1])},
		{Data: fmt.Sprintf("127.0.0.1:%d", ports[2]), Token: fmt.Sprintf("127.0.0.1:%d", ports[3])},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	nodes := make([]*Node, 2)
	for i := range nodes {
		peers := map[ProcID]UDPAddrs{}
		for j := range addrs {
			if j != i {
				peers[ProcID(j+1)] = addrs[j]
			}
		}
		n, err := Open(ctx,
			WithSelf(ProcID(i+1)),
			WithWire(WireConfig{
				Listen:  addrs[i],
				Peers:   peers,
				Batch:   BatchConfig{Send: 16, Recv: 16},
				Packing: &PackingConfig{},
			}),
			WithWindows(10, 100, 7),
			WithTimeouts(fastTimeouts()),
		)
		if err != nil {
			t.Fatalf("Open node %d with WithWire: %v", i+1, err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if err := n.WaitReady(ctx); err != nil {
			t.Fatalf("node %v WaitReady: %v", n.ID(), err)
		}
	}

	for _, n := range nodes {
		if err := n.Join("wire"); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		for {
			v := nextEvent[*GroupView](t, n)
			if v.Group == "wire" && len(v.Members) == 2 {
				break
			}
		}
	}
	const per = 10
	for i, n := range nodes {
		for j := 0; j < per; j++ {
			if err := n.Send(Agreed, []byte(fmt.Sprintf("w%d-%d", i+1, j)), "wire"); err != nil {
				t.Fatal(err)
			}
		}
	}
	var sequences [2][]string
	for i, n := range nodes {
		for len(sequences[i]) < 2*per {
			m := nextEvent[*Message](t, n)
			sequences[i] = append(sequences[i], fmt.Sprintf("%v:%s", m.Sender, m.Payload))
		}
	}
	for j := range sequences[0] {
		if sequences[0][j] != sequences[1][j] {
			t.Fatalf("order diverged at %d: %q vs %q", j, sequences[0][j], sequences[1][j])
		}
	}
}

// TestOpenWithWireSharded proves WithWire carries per-ring transports
// for a sharded node (the WireConfig.Transports path), replacing
// WithShardTransports.
func TestOpenWithWireSharded(t *testing.T) {
	const nn, shards = 2, 2
	hubs := make([]*Hub, shards)
	for r := range hubs {
		hubs[r] = NewHub()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	nodes := make([]*Node, nn)
	for i := 0; i < nn; i++ {
		ts := make([]Transport, shards)
		for r := range ts {
			ep, err := hubs[r].Endpoint(ProcID(i+1), 4096, 64)
			if err != nil {
				t.Fatal(err)
			}
			ts[r] = ep
		}
		n, err := Open(ctx,
			WithSelf(ProcID(i+1)),
			WithShards(shards),
			WithWire(WireConfig{Transports: ts}),
			WithWindows(10, 100, 7),
			WithTimeouts(fastTimeouts()),
		)
		if err != nil {
			t.Fatalf("Open sharded node %d with WithWire: %v", i+1, err)
		}
		nodes[i] = n
		t.Cleanup(func() { n.Close() })
	}
	for _, n := range nodes {
		if err := n.WaitReady(ctx); err != nil {
			t.Fatalf("WaitReady: %v", err)
		}
	}
	// One group lands on some shard; both members converge and order.
	for _, n := range nodes {
		if err := n.Join("g"); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes {
		for {
			v := nextEvent[*GroupView](t, n)
			if v.Group == "g" && len(v.Members) == nn {
				break
			}
		}
	}
	if err := nodes[0].Send(Agreed, []byte("sharded-wire"), "g"); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if m := nextEvent[*Message](t, n); string(m.Payload) != "sharded-wire" {
			t.Fatalf("node %v delivered %q", n.ID(), m.Payload)
		}
	}
}
